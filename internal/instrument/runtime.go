// Package instrument implements the instrumented profiling runtime: the
// realization of the paper's probe insertion as interpreter-attached edge
// probes. The probe *sites* and the register machinery (`r` for Ball-Larus
// ids, `ro`/`ol` per overlap region) follow Section 2.3 and Section 3.3 of
// the paper; probe costs accrue per executed probe operation so the
// overhead model can report the paper's overhead percentages.
package instrument

import (
	"fmt"

	"pathprof/internal/bl"
	"pathprof/internal/cfg"
	"pathprof/internal/interp"
	"pathprof/internal/olpath"
	"pathprof/internal/overhead"
	"pathprof/internal/profile"
)

// Config selects what to instrument.
type Config struct {
	// K is the degree of overlap (clamped per region to its maximum
	// useful degree). K applies to loop and interprocedural overlapping
	// paths alike, as in the paper's sweeps.
	K int
	// Loops enables overlapping-loop-path profiling.
	Loops bool
	// Interproc enables Type I / Type II interprocedural profiling.
	Interproc bool
	// Iters is the multi-iteration window width for loop overlapping
	// paths: each profiled path spans up to Iters consecutive iterations.
	// 0 (the zero value) and 2 both select the paper's two-iteration
	// setting; values are clamped to [2, olpath.MaxIters]. See EffIters.
	Iters int
	// Selection restricts overlapping-path probes to chosen loops and
	// call sites (nil = everything). Ball-Larus probes are unaffected.
	Selection *profile.Selection
	// ChordBL places Ball-Larus increments on spanning-tree chords
	// (Ball-Larus's probe-placement optimization) instead of on every
	// valued edge; affects probe-cost accounting only — path ids are
	// identical by construction.
	ChordBL bool
	// ChordProfile, when set with ChordBL, weights the spanning tree
	// with a prior run's BL profile so the hottest edges escape
	// instrumentation (the two-phase placement Ball-Larus describe).
	ChordProfile *profile.Counters
}

// EffIters returns the effective multi-iteration window width: Iters
// clamped to [2, olpath.MaxIters], with everything below 2 (including the
// zero value) meaning the classic two-iteration setting.
func (c Config) EffIters() int {
	if c.Iters < 2 {
		return 2
	}
	if c.Iters > olpath.MaxIters {
		return olpath.MaxIters
	}
	return c.Iters
}

// Runtime is the instrumented-run listener. Register it on a machine (via
// New or Plan.Attach), run, then read Counters and Ops.
type Runtime struct {
	interp.BaseListener
	Info *profile.Info
	Cfg  Config
	// BLOps, LoopOps, InterOps tally probe operations by category.
	BLOps, LoopOps, InterOps int64
	// Err records the first internal error.
	Err error

	store   profile.CounterStore
	idx     int
	pending *pendingCall
	plans   []*funcPlan
}

// Counters returns the run's collected counters in the canonical
// nested-map form (materialized on demand for flat stores; read it after
// the run completes).
func (rt *Runtime) Counters() *profile.Counters { return rt.store.Counters() }

type pendingCall struct {
	caller, site int
	prefix       int64
}

// funcPlan caches per-function instrumentation state.
type funcPlan struct {
	fi *profile.FuncInfo
	// chords is the BL probe placement when Config.ChordBL is on.
	chords *bl.Chords
	// loopExts[i] is loop i's extension region at its effective degree
	// (nil when loop profiling is off).
	loopExts []*olpath.Ext
	// entryExt is the Type I region (nil when interproc is off).
	entryExt *olpath.Ext
	// suffixExts[i] is call site i's Type II region.
	suffixExts []*olpath.Ext
}

type suffixState struct {
	tr     *olpath.Tracker
	site   int
	callee int
	q      int64
}

type frProbe struct {
	plan *funcPlan
	w    *bl.Walker
	// loopTr[i] tracks loop i's extension; rings[i] holds loop i's open
	// multi-iteration windows (at iters=2 a ring degenerates to the
	// classic single base-path register).
	loopTr []*olpath.Tracker
	rings  []olpath.Ring
	// entryTr tracks the Type I extension until the first path completes.
	entryTr  *olpath.Tracker
	entryKey pendingCall
	// suffixes are the in-flight Type II extensions.
	suffixes []suffixState
	lastID   int64
}

// Plan is a reusable instrumentation plan: the per-function probe
// placements (chords, extension regions) a Config implies, fully resolved.
// A Plan is immutable after BuildPlan and may be attached to any number of
// machines, concurrently — this is what a pipeline ArtifactCache shares
// across the runs of a degree sweep.
type Plan struct {
	Info  *profile.Info
	Cfg   Config
	funcs []*funcPlan
}

// FuncInfoAt returns the FuncInfo of function f (by program index).
func (p *Plan) FuncInfoAt(f int) *profile.FuncInfo { return p.funcs[f].fi }

// ChordsAt returns function f's Ball-Larus chord placement (nil when
// Config.ChordBL is off).
func (p *Plan) ChordsAt(f int) *bl.Chords { return p.funcs[f].chords }

// LoopExtsAt returns function f's per-loop extension regions at their
// effective degrees (nil when loop profiling is off).
func (p *Plan) LoopExtsAt(f int) []*olpath.Ext { return p.funcs[f].loopExts }

// EntryExtAt returns function f's Type I callee-entry region (nil when
// interprocedural profiling is off).
func (p *Plan) EntryExtAt(f int) *olpath.Ext { return p.funcs[f].entryExt }

// SuffixExtsAt returns function f's per-call-site Type II suffix regions
// (nil when interprocedural profiling is off).
func (p *Plan) SuffixExtsAt(f int) []*olpath.Ext { return p.funcs[f].suffixExts }

// New creates a runtime for info under cfg and registers it on m, building
// a throwaway plan and a nested-map store (the uncached path; reuse plans
// through BuildPlan/Attach or internal/pipeline when running more than
// once).
func New(info *profile.Info, cfg Config, m *interp.Machine) (*Runtime, error) {
	plan, err := BuildPlan(info, cfg)
	if err != nil {
		return nil, err
	}
	return plan.Attach(m, nil), nil
}

// BuildPlan resolves the probe placement for every function of info under
// cfg.
func BuildPlan(info *profile.Info, cfg Config) (*Plan, error) {
	p := &Plan{Info: info, Cfg: cfg}
	for _, fi := range info.Funcs {
		fp := &funcPlan{fi: fi}
		if cfg.ChordBL {
			weight := bl.UniformWeight
			if cfg.ChordProfile != nil {
				w, err := bl.ProfileWeight(fi.DAG, cfg.ChordProfile.BL[fi.Index])
				if err != nil {
					return nil, fmt.Errorf("instrument: %s: %w", fi.Fn.Name, err)
				}
				weight = w
			}
			ch, err := bl.ComputeChords(fi.DAG, weight)
			if err != nil {
				return nil, fmt.Errorf("instrument: %s: %w", fi.Fn.Name, err)
			}
			fp.chords = ch
		}
		if cfg.Loops && cfg.K >= 0 {
			fp.loopExts = make([]*olpath.Ext, len(fi.Loops))
			for i, li := range fi.Loops {
				x, err := li.Ext(li.EffectiveK(cfg.K))
				if err != nil {
					return nil, fmt.Errorf("instrument: %s: %w", fi.Fn.Name, err)
				}
				fp.loopExts[i] = x
			}
		}
		if cfg.Interproc && cfg.K >= 0 {
			x, err := fi.EntryExt(fi.EffectiveKEntry(cfg.K))
			if err != nil {
				return nil, fmt.Errorf("instrument: %s: %w", fi.Fn.Name, err)
			}
			fp.entryExt = x
			fp.suffixExts = make([]*olpath.Ext, len(fi.CallSites))
			for i, cs := range fi.CallSites {
				sx, err := cs.SuffixExt(cs.EffectiveKSuffix(cfg.K))
				if err != nil {
					return nil, fmt.Errorf("instrument: %s: %w", fi.Fn.Name, err)
				}
				fp.suffixExts[i] = sx
			}
		}
		p.funcs = append(p.funcs, fp)
	}
	return p, nil
}

// Attach registers a fresh runtime for the plan on m, writing counters
// through store (nil = a fresh nested-map store). Each run needs its own
// Runtime; the plan itself is shared.
func (p *Plan) Attach(m *interp.Machine, store profile.CounterStore) *Runtime {
	if store == nil {
		store = profile.NewNestedStore(len(p.Info.Funcs))
	}
	rt := &Runtime{
		Info:  p.Info,
		Cfg:   p.Cfg,
		store: store,
		plans: p.funcs,
	}
	rt.idx = m.AddListener(rt)
	return rt
}

// Report packages the run's overhead against a base-op count.
func (rt *Runtime) Report(baseOps int64) overhead.Report {
	return overhead.Report{
		BaseOps:  baseOps,
		BLOps:    rt.BLOps,
		LoopOps:  rt.LoopOps,
		InterOps: rt.InterOps,
	}
}

func (rt *Runtime) setErr(err error) {
	if rt.Err == nil && err != nil {
		rt.Err = err
	}
}

func (rt *Runtime) state(fr *interp.Frame) *frProbe {
	ps, _ := fr.Data[rt.idx].(*frProbe)
	return ps
}

// OnEnter implements interp.Listener.
func (rt *Runtime) OnEnter(fr *interp.Frame) {
	fp := rt.plans[rt.Info.OfFunc(fr.Fn).Index]
	ps := &frProbe{
		plan: fp,
		w:    bl.NewWalker(fp.fi.DAG),
	}
	if fp.loopExts != nil {
		ps.loopTr = make([]*olpath.Tracker, len(fp.loopExts))
		ps.rings = make([]olpath.Ring, len(fp.loopExts))
		iters := rt.Cfg.EffIters()
		for i, x := range fp.loopExts {
			ps.loopTr[i] = olpath.NewTracker(x)
			ps.rings[i].Reset(iters)
		}
	}
	if fp.entryExt != nil && rt.pending != nil {
		ps.entryTr = olpath.NewTracker(fp.entryExt)
		ps.entryTr.Activate()
		ps.entryKey = *rt.pending
		rt.InterOps += 2 * overhead.RegOp // func id store + prefix save
	}
	rt.pending = nil
	fr.Data[rt.idx] = ps
}

// OnEdge implements interp.Listener.
func (rt *Runtime) OnEdge(fr *interp.Frame, from, to int) {
	ps := rt.state(fr)
	fp := ps.plan
	fi := fp.fi
	e := cfg.Edge{From: cfg.NodeID(from), To: cfg.NodeID(to)}
	isBackedge := fi.DAG.IsBackedge(e)

	// Ball-Larus register work. Naive placement: one op per non-zero
	// increment, and backedges pay the two register reloads. Chord
	// placement: one op per chord edge with a non-zero chord increment
	// (the dummy edges a backedge stands for included).
	if fp.chords == nil {
		if !isBackedge {
			if re := fi.DAG.RealEdge(e); re != nil && re.Val != 0 {
				rt.BLOps += overhead.RegOp
			}
		} else {
			rt.BLOps += 2 * overhead.RegOp
		}
	} else {
		charge := func(de *bl.DAGEdge) {
			if de != nil && fp.chords.IsChord(de) && fp.chords.Inc(de) != 0 {
				rt.BLOps += overhead.RegOp
			}
		}
		if !isBackedge {
			charge(fi.DAG.RealEdge(e))
		} else {
			charge(fi.DAG.ExitDummy(e))
			charge(fi.DAG.EntryDummy(e.To))
		}
	}

	// Overlap-region probe work happens before the walker consumes the
	// edge (probes sit on the edge itself).
	if ps.loopTr != nil {
		rt.loopEdge(ps, e, isBackedge)
	}
	if ps.entryTr != nil && !isBackedge {
		rt.extStep(ps.entryTr, e, &rt.InterOps)
	}
	for i := range ps.suffixes {
		if !isBackedge {
			rt.extStep(ps.suffixes[i].tr, e, &rt.InterOps)
		}
	}

	inst, err := ps.w.Step(cfg.NodeID(to))
	if err != nil {
		rt.setErr(err)
		return
	}
	if inst != nil {
		rt.completed(ps, inst)
		// A backedge both completes a path and activates the loop's
		// extension with the completed path as base.
		if ps.loopTr != nil {
			li := fi.LoopOfBackedge[e]
			if li == nil {
				rt.setErr(fmt.Errorf("instrument: backedge %v without loop in %s", e, fi.Fn.Name))
				return
			}
			if !rt.Cfg.Selection.LoopOn(fi.Index, li.Index) {
				return
			}
			tr := ps.loopTr[li.Index]
			if tr.Active {
				rt.crossLoop(ps, li, tr, false, true)
			}
			tr.Activate()
			ps.rings[li.Index].Open(inst.PathID)
			rt.LoopOps += 3 * overhead.RegOp // ro = r + y; r = x; ol = 0
		}
	}
}

// loopEdge handles loop-overlap probes for one edge.
func (rt *Runtime) loopEdge(ps *frProbe, e cfg.Edge, isBackedge bool) {
	fi := ps.plan.fi
	for i, li := range fi.Loops {
		if !rt.Cfg.Selection.LoopOn(fi.Index, i) {
			continue
		}
		x := ps.plan.loopExts[i]
		tr := ps.loopTr[i]
		inFrom := li.Loop.Contains(e.From)
		inTo := li.Loop.Contains(e.To)
		switch {
		case isBackedge && li.Loop.IsBackedge(e):
			// Handled after the walker step (needs the completed
			// path id); nothing here.
		case inFrom && !inTo:
			// Loop exit edge: flush an active extension. The
			// iteration is full iff it leaves from one of this
			// loop's tails.
			rt.LoopOps += overhead.GuardOp
			if tr.Active {
				rt.crossLoop(ps, li, tr, true, isTailOf(li, e.From))
			}
		case inFrom && inTo:
			if isBackedge {
				// Another loop's backedge inside this body: the
				// overlapped iteration is interrupted mid-way;
				// it can no longer complete as a full sequence.
				tr.MarkBroken()
				continue
			}
			// In-body edge: DI/PI probes execute statically.
			switch x.Classify(e) {
			case olpath.DI:
				rt.LoopOps += overhead.RegOp
			case olpath.PI:
				rt.LoopOps += overhead.GuardOp
				if tr.Active && !tr.Frozen {
					rt.LoopOps += overhead.RegOp
				}
			}
			tr.Step(e)
			// The paper's `ol++` at every predicate inside the
			// loop.
			if fi.DAG.PredicateLike(e.To) {
				rt.LoopOps += overhead.RegOp
			}
		case !inFrom && inTo:
			// Loop entry edge: `ro = -infinity`.
			rt.LoopOps += overhead.RegOp
		}
	}
}

// isTailOf reports whether v is the source of one of li's backedges.
func isTailOf(li *profile.LoopInfo, v cfg.NodeID) bool {
	for _, be := range li.Loop.Backedges {
		if be.From == v {
			return true
		}
	}
	return false
}

// crossLoop finalizes one backedge/exit crossing of loop li: the tracker's
// route is appended to every open window of the loop's ring, and the
// windows the crossing closes become counter increments. On the loop's own
// backedge (exit=false) only full-width windows close, and the still-open
// windows pay one register append each; on a loop exit (exit=true) every
// window closes, truncated or not. fullIter reports that the crossed
// iteration ran header to tail; an interrupted (Broken) crossing is kept
// but never full.
func (rt *Runtime) crossLoop(ps *frProbe, li *profile.LoopInfo, tr *olpath.Tracker, exit, fullIter bool) {
	full := fullIter && !tr.Broken
	ext := tr.Finalize()
	ring := &ps.rings[li.Index]
	var ws []olpath.Window
	if exit {
		ws = ring.FlushAll(ext, full)
	} else {
		open := ring.Len()
		ws = ring.Cross(ext, full)
		rt.LoopOps += int64(open-len(ws)) * overhead.RegOp
	}
	for _, w := range ws {
		rt.store.IncLoop(profile.LoopKeyOf(ps.plan.fi.Index, li.Index, w))
		rt.LoopOps += overhead.CounterOp
	}
}

// extStep advances an interprocedural extension tracker over edge e with
// probe accounting.
func (rt *Runtime) extStep(tr *olpath.Tracker, e cfg.Edge, ops *int64) {
	switch tr.X.Classify(e) {
	case olpath.DI:
		*ops += overhead.RegOp
	case olpath.PI:
		*ops += overhead.GuardOp
		if tr.Active && !tr.Frozen {
			*ops += overhead.RegOp
		}
	}
	if tr.X.D.PredicateLike(e.To) && tr.Active {
		*ops += overhead.RegOp // ol++
	}
	tr.Step(e)
}

// completed handles a finished BL path instance.
func (rt *Runtime) completed(ps *frProbe, inst *bl.Instance) {
	fi := ps.plan.fi
	rt.store.IncBL(fi.Index, inst.PathID)
	rt.BLOps += overhead.CounterOp
	ps.lastID = inst.PathID

	if ps.entryTr != nil {
		ext := ps.entryTr.Finalize()
		rt.store.IncTypeI(profile.TypeIKey{
			Caller: ps.entryKey.caller, Site: ps.entryKey.site,
			Callee: fi.Index, Prefix: ps.entryKey.prefix, Ext: ext,
		})
		rt.InterOps += overhead.TupleCounterOp
		ps.entryTr = nil
	}
	for _, s := range ps.suffixes {
		ext := s.tr.Finalize()
		rt.store.IncTypeII(profile.TypeIIKey{
			Caller: fi.Index, Site: s.site, Callee: s.callee,
			Path: s.q, Ext: ext,
		})
		rt.InterOps += overhead.TupleCounterOp
	}
	ps.suffixes = ps.suffixes[:0]
}

// OnCall implements interp.Listener.
func (rt *Runtime) OnCall(caller *interp.Frame, site int, calleeFr *interp.Frame) {
	ps := rt.state(caller)
	cs := ps.plan.fi.CallSiteOfBlock[cfg.NodeID(site)]
	if cs == nil {
		rt.setErr(fmt.Errorf("instrument: no call site info at %s block %d", ps.plan.fi.Fn.Name, site))
		return
	}
	calleeIdx := rt.Info.OfFunc(calleeFr.Fn).Index
	rt.store.IncCall(profile.CallKey{Caller: ps.plan.fi.Index, Site: cs.Index, Callee: calleeIdx})
	if rt.Cfg.Interproc && rt.Cfg.K >= 0 && rt.Cfg.Selection.SiteOn(ps.plan.fi.Index, cs.Index) {
		rt.InterOps += overhead.CallProbeOp
		rt.pending = &pendingCall{caller: ps.plan.fi.Index, site: cs.Index, prefix: ps.w.PartialID()}
	}
}

// OnExit implements interp.Listener.
func (rt *Runtime) OnExit(fr *interp.Frame) {
	ps := rt.state(fr)
	inst, err := ps.w.Finish()
	if err != nil {
		rt.setErr(err)
		return
	}
	rt.completed(ps, inst)
}

// OnReturn implements interp.Listener.
func (rt *Runtime) OnReturn(calleeFr, callerFr *interp.Frame, site int) {
	if !rt.Cfg.Interproc || rt.Cfg.K < 0 {
		return
	}
	callerPS := rt.state(callerFr)
	calleePS := rt.state(calleeFr)
	cs := callerPS.plan.fi.CallSiteOfBlock[cfg.NodeID(site)]
	if cs == nil {
		rt.setErr(fmt.Errorf("instrument: no call site info at %s block %d", callerPS.plan.fi.Fn.Name, site))
		return
	}
	if !rt.Cfg.Selection.SiteOn(callerPS.plan.fi.Index, cs.Index) {
		return
	}
	tr := olpath.NewTracker(callerPS.plan.suffixExts[cs.Index])
	tr.Activate()
	callerPS.suffixes = append(callerPS.suffixes, suffixState{
		tr:     tr,
		site:   cs.Index,
		callee: calleePS.plan.fi.Index,
		q:      calleePS.lastID,
	})
	rt.InterOps += 2 * overhead.RegOp // arm ro/ol for the suffix
}
