// Package interp executes IR programs deterministically and exposes the
// event stream — block transitions, calls, returns — that the profiling
// runtimes and the whole-program tracer attach to.
//
// It stands in for native execution of instrumented binaries: probes are
// modeled as listener work on exactly the control-flow events the paper's
// instrumentation sites fire on, and the overhead model counts probe
// operations against the interpreter's base operation count.
package interp

import (
	"errors"
	"fmt"
	"io"

	"pathprof/internal/ir"
)

// Frame is one procedure activation.
type Frame struct {
	Fn    *ir.Func
	Block int
	Slots []int64
	// Depth is the call depth (main = 0).
	Depth int
	// Data holds per-frame listener state, indexed by the listener's
	// registration index.
	Data []any

	// pending call bookkeeping (owned by the machine).
	pendHasDst bool
	pendDst    ir.Dest
	// site is the caller block id of the Call that created the callee
	// frame below this one; stored on the *callee* frame.
	site int
}

// Listener observes execution events. All hooks are optional no-ops in
// BaseListener.
type Listener interface {
	// OnEnter fires when a frame begins executing (standing at the
	// entry block, before its body runs).
	OnEnter(fr *Frame)
	// OnEdge fires on every intra-procedural control transfer from
	// block `from` to block `to` of fr.Fn — including the resume edge
	// from a call-site block to its continuation.
	OnEdge(fr *Frame, from, to int)
	// OnCall fires when caller (standing at call-site block site)
	// invokes callee; calleeFr is the new frame, not yet entered.
	OnCall(caller *Frame, site int, calleeFr *Frame)
	// OnExit fires when fr's Ret executes (fr stands at its exit
	// block), before the frame pops.
	OnExit(fr *Frame)
	// OnReturn fires after callee popped, before the caller resumes;
	// site is the caller's call-site block.
	OnReturn(calleeFr, callerFr *Frame, site int)
}

// BaseListener implements Listener with no-ops for embedding.
type BaseListener struct{}

// OnEnter implements Listener.
func (BaseListener) OnEnter(*Frame) {}

// OnEdge implements Listener.
func (BaseListener) OnEdge(*Frame, int, int) {}

// OnCall implements Listener.
func (BaseListener) OnCall(*Frame, int, *Frame) {}

// OnExit implements Listener.
func (BaseListener) OnExit(*Frame) {}

// OnReturn implements Listener.
func (BaseListener) OnReturn(*Frame, *Frame, int) {}

// Machine executes one program.
type Machine struct {
	Prog    *ir.Program
	Globals []int64
	Arrays  [][]int64
	// Out receives Print output (defaults to io.Discard).
	Out io.Writer
	// MaxSteps bounds executed blocks (0 = default limit).
	MaxSteps int64
	// MaxDepth bounds call depth.
	MaxDepth int

	// Steps counts executed blocks; BaseOps accumulates block costs
	// (the denominator of the overhead model).
	Steps   int64
	BaseOps int64

	rng       uint64
	listeners []Listener
	// free recycles Frames (and their Slots/Data backing) across calls;
	// frames are released after OnReturn fires, so listeners may use a
	// frame inside callbacks but must not retain it past them.
	free []*Frame
}

const (
	defaultMaxSteps = int64(200_000_000)
	defaultMaxDepth = 4096
)

// New creates a machine for prog with the given deterministic RNG seed.
func New(prog *ir.Program, seed uint64) *Machine {
	m := &Machine{
		Prog:     prog,
		Globals:  make([]int64, len(prog.Globals)),
		Out:      io.Discard,
		MaxSteps: defaultMaxSteps,
		MaxDepth: defaultMaxDepth,
		rng:      seed*2685821657736338717 + 1442695040888963407,
	}
	m.Arrays = make([][]int64, len(prog.Arrays))
	for i, a := range prog.Arrays {
		m.Arrays[i] = make([]int64, a.Size)
	}
	return m
}

// AddListener registers l and returns its index (the slot of its per-frame
// Data). Listeners must be registered before Run.
func (m *Machine) AddListener(l Listener) int {
	m.listeners = append(m.listeners, l)
	return len(m.listeners) - 1
}

// ErrStepLimit reports that execution exceeded MaxSteps.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// Run executes main to completion.
func (m *Machine) Run() error {
	main := m.Prog.FuncByName("main")
	if main == nil {
		return fmt.Errorf("interp: no main")
	}
	frames := []*Frame{m.newFrame(main, nil, 0)}
	for _, l := range m.listeners {
		l.OnEnter(frames[0])
	}

	for len(frames) > 0 {
		if m.Steps >= m.MaxSteps {
			return ErrStepLimit
		}
		fr := frames[len(frames)-1]
		blk := fr.Fn.Blocks[fr.Block]
		m.Steps++
		m.BaseOps += blk.Cost()
		for _, in := range blk.Body {
			if err := m.exec(fr, in); err != nil {
				return fmt.Errorf("interp: %s.%s: %w", fr.Fn.Name, blk.Label, err)
			}
		}
		switch t := blk.Term.(type) {
		case ir.Jump:
			m.edge(fr, fr.Block, t.To)
			fr.Block = t.To
		case ir.Branch:
			c, err := m.eval(fr, t.Cond)
			if err != nil {
				return fmt.Errorf("interp: %s.%s: %w", fr.Fn.Name, blk.Label, err)
			}
			to := t.Else
			if c != 0 {
				to = t.Then
			}
			m.edge(fr, fr.Block, to)
			fr.Block = to
		case ir.Call:
			callee, err := m.resolveCallee(fr, t)
			if err != nil {
				return fmt.Errorf("interp: %s.%s: %w", fr.Fn.Name, blk.Label, err)
			}
			if fr.Depth+1 >= m.MaxDepth {
				return fmt.Errorf("interp: call depth limit at %s", callee.Name)
			}
			if len(t.Args) != callee.NumParams {
				return fmt.Errorf("interp: call %s with %d args, want %d", callee.Name, len(t.Args), callee.NumParams)
			}
			nf := m.newFrame(callee, fr, fr.Block)
			for i, a := range t.Args {
				v, err := m.eval(fr, a)
				if err != nil {
					return fmt.Errorf("interp: %s.%s: %w", fr.Fn.Name, blk.Label, err)
				}
				nf.Slots[i] = v
			}
			fr.pendHasDst = t.HasDst
			fr.pendDst = t.Dst
			frames = append(frames, nf)
			for _, l := range m.listeners {
				l.OnCall(fr, fr.Block, nf)
			}
			for _, l := range m.listeners {
				l.OnEnter(nf)
			}
		case ir.Ret:
			var rv int64
			if t.HasVal {
				v, err := m.eval(fr, t.Val)
				if err != nil {
					return fmt.Errorf("interp: %s.%s: %w", fr.Fn.Name, blk.Label, err)
				}
				rv = v
			}
			for _, l := range m.listeners {
				l.OnExit(fr)
			}
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				m.freeFrame(fr)
				return nil
			}
			caller := frames[len(frames)-1]
			if caller.pendHasDst {
				m.store(caller, caller.pendDst, rv)
				caller.pendHasDst = false
			}
			for _, l := range m.listeners {
				l.OnReturn(fr, caller, fr.site)
			}
			m.freeFrame(fr)
			next := caller.Fn.Blocks[caller.Block].Term.(ir.Call).Next
			m.edge(caller, caller.Block, next)
			caller.Block = next
		default:
			return fmt.Errorf("interp: block %s.%s has no terminator", fr.Fn.Name, blk.Label)
		}
	}
	return nil
}

func (m *Machine) newFrame(fn *ir.Func, caller *Frame, site int) *Frame {
	depth := 0
	if caller != nil {
		depth = caller.Depth + 1
	}
	if n := len(m.free); n > 0 {
		fr := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		fr.Fn = fn
		fr.Block = fn.Entry
		fr.Depth = depth
		fr.site = site
		fr.pendHasDst = false
		if ns := fn.NumSlots(); cap(fr.Slots) >= ns {
			fr.Slots = fr.Slots[:ns]
			for i := range fr.Slots {
				fr.Slots[i] = 0
			}
		} else {
			fr.Slots = make([]int64, ns)
		}
		if nl := len(m.listeners); cap(fr.Data) >= nl {
			fr.Data = fr.Data[:nl]
			for i := range fr.Data {
				fr.Data[i] = nil
			}
		} else {
			fr.Data = make([]any, nl)
		}
		return fr
	}
	return &Frame{
		Fn:    fn,
		Block: fn.Entry,
		Slots: make([]int64, fn.NumSlots()),
		Depth: depth,
		Data:  make([]any, len(m.listeners)),
		site:  site,
	}
}

// freeFrame recycles fr once no listener can legitimately touch it again
// (after OnReturn, or after the final OnExit of main).
func (m *Machine) freeFrame(fr *Frame) {
	m.free = append(m.free, fr)
}

func (m *Machine) resolveCallee(fr *Frame, t ir.Call) (*ir.Func, error) {
	if !t.Indirect {
		f := m.Prog.FuncByName(t.Callee)
		if f == nil {
			return nil, fmt.Errorf("call to unknown %q", t.Callee)
		}
		return f, nil
	}
	v, err := m.eval(fr, t.Target)
	if err != nil {
		return nil, err
	}
	if v < 0 || v >= int64(len(m.Prog.Funcs)) {
		return nil, fmt.Errorf("indirect call to invalid callable id %d", v)
	}
	return m.Prog.Funcs[v], nil
}

func (m *Machine) edge(fr *Frame, from, to int) {
	for _, l := range m.listeners {
		l.OnEdge(fr, from, to)
	}
}

func (m *Machine) eval(fr *Frame, o ir.Operand) (int64, error) {
	switch o.Kind {
	case ir.Const:
		return o.Val, nil
	case ir.Local:
		return fr.Slots[o.Index], nil
	case ir.Global:
		return m.Globals[o.Index], nil
	default:
		return 0, fmt.Errorf("bad operand kind %d", o.Kind)
	}
}

func (m *Machine) store(fr *Frame, d ir.Dest, v int64) {
	if d.Kind == ir.Local {
		fr.Slots[d.Index] = v
	} else {
		m.Globals[d.Index] = v
	}
}

// Rand returns the next deterministic pseudo-random value in [0, bound)
// (xorshift64*; bound <= 0 yields 0).
func (m *Machine) Rand(bound int64) int64 {
	if bound <= 0 {
		return 0
	}
	m.rng ^= m.rng >> 12
	m.rng ^= m.rng << 25
	m.rng ^= m.rng >> 27
	v := m.rng * 2685821657736338717
	return int64(v % uint64(bound))
}

func (m *Machine) exec(fr *Frame, in ir.Instr) error {
	switch in := in.(type) {
	case ir.Assign:
		v, err := m.eval(fr, in.Src)
		if err != nil {
			return err
		}
		m.store(fr, in.Dst, v)
	case ir.BinOp:
		a, err := m.eval(fr, in.A)
		if err != nil {
			return err
		}
		b, err := m.eval(fr, in.B)
		if err != nil {
			return err
		}
		v, err := apply(in.Op, a, b)
		if err != nil {
			return err
		}
		m.store(fr, in.Dst, v)
	case ir.Not:
		v, err := m.eval(fr, in.Src)
		if err != nil {
			return err
		}
		if v == 0 {
			m.store(fr, in.Dst, 1)
		} else {
			m.store(fr, in.Dst, 0)
		}
	case ir.Neg:
		v, err := m.eval(fr, in.Src)
		if err != nil {
			return err
		}
		m.store(fr, in.Dst, -v)
	case ir.LoadIdx:
		idx, err := m.eval(fr, in.Idx)
		if err != nil {
			return err
		}
		arr := m.Arrays[in.Array]
		if idx < 0 || idx >= int64(len(arr)) {
			return fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
		}
		m.store(fr, in.Dst, arr[idx])
	case ir.StoreIdx:
		idx, err := m.eval(fr, in.Idx)
		if err != nil {
			return err
		}
		v, err := m.eval(fr, in.Src)
		if err != nil {
			return err
		}
		arr := m.Arrays[in.Array]
		if idx < 0 || idx >= int64(len(arr)) {
			return fmt.Errorf("index %d out of range [0,%d)", idx, len(arr))
		}
		arr[idx] = v
	case ir.Rand:
		b, err := m.eval(fr, in.Bound)
		if err != nil {
			return err
		}
		m.store(fr, in.Dst, m.Rand(b))
	case ir.Print:
		vals := make([]any, len(in.Args))
		for i, a := range in.Args {
			v, err := m.eval(fr, a)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		fmt.Fprintln(m.Out, vals...)
	case ir.FuncRef:
		idx := m.Prog.FuncIndex(in.Name)
		if idx < 0 {
			return fmt.Errorf("funcref to unknown %q", in.Name)
		}
		m.store(fr, in.Dst, int64(idx))
	default:
		return fmt.Errorf("unknown instruction %T", in)
	}
	return nil
}

func apply(op ir.OpKind, a, b int64) (int64, error) {
	switch op {
	case ir.OpAdd:
		return a + b, nil
	case ir.OpSub:
		return a - b, nil
	case ir.OpMul:
		return a * b, nil
	case ir.OpDiv:
		if b == 0 {
			return 0, errors.New("division by zero")
		}
		return a / b, nil
	case ir.OpMod:
		if b == 0 {
			return 0, errors.New("modulo by zero")
		}
		return a % b, nil
	case ir.OpEq:
		return b2i(a == b), nil
	case ir.OpNe:
		return b2i(a != b), nil
	case ir.OpLt:
		return b2i(a < b), nil
	case ir.OpLe:
		return b2i(a <= b), nil
	case ir.OpGt:
		return b2i(a > b), nil
	case ir.OpGe:
		return b2i(a >= b), nil
	case ir.OpAnd:
		return a & b, nil
	case ir.OpOr:
		return a | b, nil
	case ir.OpXor:
		return a ^ b, nil
	default:
		return 0, fmt.Errorf("unknown op %v", op)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
