package interp

import (
	"testing"

	"pathprof/internal/ir"
	"pathprof/internal/lang"
)

// badOp is an operand with an invalid kind; the frontend never emits one,
// so it reaches eval only through hand-built IR.
var badOp = ir.Operand{Kind: 99}

// TestTerminatorErrorContext checks that errors from terminator operand
// evaluation — Branch conditions, Call arguments, Ret values — carry the
// same "interp: func.block:" context as body-instruction errors.
func TestTerminatorErrorContext(t *testing.T) {
	cases := []struct {
		name string
		prog func() *ir.Program
		want string
	}{
		{"branch cond", func() *ir.Program {
			b := ir.NewFuncBuilder("main")
			en := b.NewBlock("en")
			ex := b.NewBlock("ex")
			b.Term(ir.Ret{})
			cond := b.NewBlock("cond")
			b.SetBlock(en)
			b.Term(ir.Jump{To: cond})
			b.SetBlock(cond)
			b.Term(ir.Branch{Cond: badOp, Then: ex, Else: ex})
			return &ir.Program{Funcs: []*ir.Func{b.Finish(en, ex)}}
		}, "interp: main.cond: bad operand kind 99"},
		{"call arg", func() *ir.Program {
			fb := ir.NewFuncBuilder("f", "a")
			fen := fb.NewBlock("en")
			fex := fb.NewBlock("ex")
			fb.Term(ir.Ret{})
			fb.SetBlock(fen)
			fb.Term(ir.Jump{To: fex})
			f := fb.Finish(fen, fex)

			b := ir.NewFuncBuilder("main")
			en := b.NewBlock("en")
			ex := b.NewBlock("ex")
			b.Term(ir.Ret{})
			call := b.NewBlock("call")
			b.SetBlock(en)
			b.Term(ir.Jump{To: call})
			b.SetBlock(call)
			b.Term(ir.Call{Callee: "f", Args: []ir.Operand{badOp}, Next: ex})
			return &ir.Program{Funcs: []*ir.Func{f, b.Finish(en, ex)}}
		}, "interp: main.call: bad operand kind 99"},
		{"ret val", func() *ir.Program {
			b := ir.NewFuncBuilder("main")
			en := b.NewBlock("en")
			ex := b.NewBlock("ex")
			b.Term(ir.Ret{HasVal: true, Val: badOp})
			b.SetBlock(en)
			b.Term(ir.Jump{To: ex})
			return &ir.Program{Funcs: []*ir.Func{b.Finish(en, ex)}}
		}, "interp: main.ex: bad operand kind 99"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := New(tc.prog(), 1).Run()
			if err == nil || err.Error() != tc.want {
				t.Fatalf("err = %v; want %q", err, tc.want)
			}
		})
	}
}

// TestFrameReuseAllocs guards the frame free-list: a call-heavy run must
// not allocate a fresh Frame (plus slots and listener data) per call.
func TestFrameReuseAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed")
	}
	prog, err := lang.Compile(`
		func leaf(a) { return a + 1; }
		func main() {
			var i = 0;
			var s = 0;
			while (i < 2000) {
				s = leaf(s);
				i = i + 1;
			}
			print(s);
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := New(prog, 1).Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	// 2000 calls; without reuse each allocates a Frame + Slots (+ Data), so
	// thousands of allocs/op. With the free-list the whole run stays at a
	// small constant (machine setup + one print).
	if allocs := res.AllocsPerOp(); allocs > 100 {
		t.Fatalf("allocs/op = %d; frame reuse regressed (want <= 100)", allocs)
	}
}
