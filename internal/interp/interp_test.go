package interp

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pathprof/internal/cfg"
	"pathprof/internal/ir"
	"pathprof/internal/lang"
)

func run(t *testing.T, src string, seed uint64) (string, *Machine) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := New(prog, seed)
	var out bytes.Buffer
	m.Out = &out
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out.String(), m
}

func TestArithmeticAndControlFlow(t *testing.T) {
	out, _ := run(t, `
		func main() {
			var a = 10;
			var b = 3;
			print(a + b, a - b, a * b, a / b, a % b);
			print(a == b, a != b, a < b, a <= b, a > b, a >= b);
			print(-a, !a, !0);
		}
	`, 1)
	want := "13 7 30 3 1\n0 1 0 0 1 1\n-10 0 1\n"
	if out != want {
		t.Fatalf("out = %q; want %q", out, want)
	}
}

func TestShortCircuitSemantics(t *testing.T) {
	// g must only change when the right-hand side actually evaluates.
	out, _ := run(t, `
		var g = 0;
		func bump() { g = g + 1; return 1; }
		func main() {
			var x = 0 && bump();
			var y = 1 || bump();
			print(x, y, g);   // rhs never ran: g == 0
			var z = 1 && bump();
			var w = 0 || bump();
			print(z, w, g);   // rhs ran twice: g == 2
		}
	`, 1)
	want := "0 1 0\n1 1 2\n"
	if out != want {
		t.Fatalf("out = %q; want %q", out, want)
	}
}

func TestLoopsComputeCorrectly(t *testing.T) {
	out, _ := run(t, `
		func main() {
			var s = 0;
			for (var i = 1; i <= 10; i = i + 1) { s = s + i; }
			var f = 1;
			var n = 5;
			while (n > 1) { f = f * n; n = n - 1; }
			var d = 0;
			do { d = d + 1; } while (d < 3);
			print(s, f, d);
		}
	`, 1)
	if out != "55 120 3\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestBreakContinue(t *testing.T) {
	out, _ := run(t, `
		func main() {
			var n = 0;
			for (var i = 1; i <= 10; i = i + 1) {
				if (i % 2 == 0) { continue; }
				if (i > 7) { break; }
				n = n + i;
			}
			print(n); // 1+3+5+7 = 16
		}
	`, 1)
	if out != "16\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestRecursionAndCalls(t *testing.T) {
	out, _ := run(t, `
		func fib(n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		func main() { print(fib(15)); }
	`, 1)
	if out != "610\n" {
		t.Fatalf("fib(15) = %q; want 610", out)
	}
}

func TestIndirectCalls(t *testing.T) {
	out, _ := run(t, `
		func double(x) { return x * 2; }
		func square(x) { return x * x; }
		func main() {
			var f = @double;
			print(f(21));
			f = @square;
			print(f(7));
		}
	`, 1)
	if out != "42\n49\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestArrays(t *testing.T) {
	out, _ := run(t, `
		array tab[8];
		func main() {
			for (var i = 0; i < 8; i = i + 1) { tab[i] = i * i; }
			var s = 0;
			for (var j = 0; j < 8; j = j + 1) { s = s + tab[j]; }
			print(s, tab[7]);
		}
	`, 1)
	if out != "140 49\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestGlobalInitializers(t *testing.T) {
	out, _ := run(t, `
		var a = 5;
		var b = -3;
		var c;
		func main() { print(a, b, c); }
	`, 1)
	if out != "5 -3 0\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	src := `
		func main() {
			for (var i = 0; i < 5; i = i + 1) { print(rand(100)); }
		}
	`
	out1, _ := run(t, src, 42)
	out2, _ := run(t, src, 42)
	out3, _ := run(t, src, 43)
	if out1 != out2 {
		t.Fatalf("same seed diverged: %q vs %q", out1, out2)
	}
	if out1 == out3 {
		t.Fatal("different seeds produced identical streams")
	}
	for _, line := range strings.Fields(out1) {
		if line[0] == '-' {
			t.Fatalf("rand produced negative %s", line)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"div by zero", "func main() { var z = 0; print(1 / z); }"},
		{"mod by zero", "func main() { var z = 0; print(1 % z); }"},
		{"array oob", "array a[4]; func main() { a[9] = 1; }"},
		{"array negative", "array a[4]; func main() { var i = -1; a[i] = 1; }"},
		{"bad indirect", "func main() { var f = 99; f(); }"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := lang.Compile(tc.src)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if err := New(prog, 1).Run(); err == nil {
				t.Fatal("Run succeeded; want runtime error")
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := lang.Compile("func main() { while (1) { } }")
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 1)
	m.MaxSteps = 1000
	if err := m.Run(); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v; want ErrStepLimit", err)
	}
}

func TestDepthLimit(t *testing.T) {
	prog, err := lang.Compile("func f() { f(); } func main() { f(); }")
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 1)
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v; want depth limit", err)
	}
}

// eventRecorder checks listener event consistency.
type eventRecorder struct {
	BaseListener
	enters, exits   int
	calls, returns  int
	edges           int
	depthAtMax      int
	badEdge         bool
	lastEnteredFunc string
}

func (r *eventRecorder) OnEnter(fr *Frame) {
	r.enters++
	r.lastEnteredFunc = fr.Fn.Name
	if fr.Depth > r.depthAtMax {
		r.depthAtMax = fr.Depth
	}
}
func (r *eventRecorder) OnExit(*Frame) { r.exits++ }
func (r *eventRecorder) OnCall(caller *Frame, site int, calleeFr *Frame) {
	r.calls++
	if _, ok := caller.Fn.Blocks[site].Term.(ir.Call); !ok {
		r.badEdge = true
	}
}
func (r *eventRecorder) OnReturn(_, _ *Frame, _ int) { r.returns++ }
func (r *eventRecorder) OnEdge(fr *Frame, from, to int) {
	r.edges++
	if !fr.Fn.CFG().HasEdge(cfg.NodeID(from), cfg.NodeID(to)) {
		r.badEdge = true
	}
}

func TestListenerEventConsistency(t *testing.T) {
	prog, err := lang.Compile(`
		func leaf(x) { return x + 1; }
		func mid(x) { return leaf(x) + leaf(x); }
		func main() {
			var s = 0;
			for (var i = 0; i < 10; i = i + 1) { s = s + mid(i); }
			print(s);
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, 1)
	rec := &eventRecorder{}
	m.AddListener(rec)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 main + 10 mid + 20 leaf = 31 enters and exits.
	if rec.enters != 31 || rec.exits != 31 {
		t.Fatalf("enters/exits = %d/%d; want 31/31", rec.enters, rec.exits)
	}
	if rec.calls != 30 || rec.returns != 30 {
		t.Fatalf("calls/returns = %d/%d; want 30/30", rec.calls, rec.returns)
	}
	if rec.depthAtMax != 2 {
		t.Fatalf("max depth = %d; want 2", rec.depthAtMax)
	}
	if rec.badEdge {
		t.Fatal("listener saw a call site without a Call terminator")
	}
	if m.Steps == 0 || m.BaseOps < m.Steps {
		t.Fatalf("steps=%d baseops=%d", m.Steps, m.BaseOps)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	out, _ := run(t, `
		func main() {
			print(2 + 3 * 4);        // 14
			print((2 + 3) * 4);      // 20
			print(10 - 4 - 3);       // 3 (left assoc)
			print(20 / 4 / 5);       // 1
			print(1 + 2 < 4);        // 1
			print(1 < 2 == 1);       // 1
			print(-3 * -3);          // 9
			print(!0 + !5);          // 1
			print(100 % 7 % 3);      // 2
		}
	`, 1)
	want := "14\n20\n3\n1\n1\n1\n9\n1\n2\n"
	if out != want {
		t.Fatalf("out = %q; want %q", out, want)
	}
}

func TestNegativeDivModSemantics(t *testing.T) {
	// Go-style truncated division: (-7)/2 == -3, (-7)%2 == -1.
	out, _ := run(t, `
		func main() {
			var a = -7;
			print(a / 2, a % 2, 7 / -2, 7 % -2);
		}
	`, 1)
	if out != "-3 -1 -3 1\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestElseIfChains(t *testing.T) {
	out, _ := run(t, `
		func classify(x) {
			if (x < 10) { return 1; }
			else if (x < 20) { return 2; }
			else if (x < 30) { return 3; }
			else { return 4; }
		}
		func main() {
			print(classify(5), classify(15), classify(25), classify(99));
		}
	`, 1)
	if out != "1 2 3 4\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestDeepExpressionNesting(t *testing.T) {
	// 60 levels of parentheses stress the recursive-descent parser.
	expr := "1"
	for i := 0; i < 60; i++ {
		expr = "(" + expr + " + 1)"
	}
	out, _ := run(t, "func main() { print("+expr+"); }", 1)
	if out != "61\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestArgumentEvaluationOrder(t *testing.T) {
	// Arguments evaluate left to right; a call in a later argument must
	// not clobber an earlier argument's value.
	out, _ := run(t, `
		var g = 1;
		func bump() { g = g + 10; return g; }
		func pair(a, b) { return a * 1000 + b; }
		func main() {
			print(pair(g, bump())); // 1 then 11 -> 1011
			print(pair(bump(), g)); // 21 then 21 -> 21021
		}
	`, 1)
	if out != "1011\n21021\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestShortCircuitInConditionsSplitsPaths(t *testing.T) {
	// The lowering of && in a loop condition context must still behave
	// correctly when the rhs has side effects.
	out, _ := run(t, `
		var evals = 0;
		func side(v) { evals = evals + 1; return v; }
		func main() {
			var n = 0;
			for (var i = 0; i < 10 && side(1) == 1; i = i + 1) { n = n + 1; }
			print(n, evals); // rhs evaluated once per test while i<10: 10 times
		}
	`, 1)
	if out != "10 10\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestCallInLoopHeaderPositions(t *testing.T) {
	// Calls in for-init, loop conditions, and post clauses exercise the
	// block-splitting paths of the lowerer.
	out, _ := run(t, `
		var fuel = 5;
		func take() { fuel = fuel - 1; return fuel; }
		func two() { return 2; }
		func main() {
			var n = 0;
			for (var x = two(); x < two() * 3; x = x + two() - 1) { n = n + 1; }
			print(n); // x: 2,3,4,5 -> 4 iterations
			var m = 0;
			while (take() > 0) { m = m + 1; }
			print(m, fuel); // take: 4,3,2,1,0 -> 4 iterations, fuel 0
		}
	`, 1)
	if out != "4\n4 0\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestIndirectCallThroughGlobal(t *testing.T) {
	out, _ := run(t, `
		var handler;
		func inc(x) { return x + 1; }
		func dbl(x) { return x * 2; }
		func main() {
			handler = @inc;
			print(handler(5));
			handler = @dbl;
			print(handler(5));
		}
	`, 1)
	if out != "6\n10\n" {
		t.Fatalf("out = %q", out)
	}
}
