// Package pgo closes the profile-guided-optimization loop: it turns a
// path profile (local, merged, or fetched from a pathprofd fleet) into a
// layout Plan — one superblock ordering per function — that the bytecode
// compilers consume to reorder instruction emission. The dominant
// overlapping path becomes the fall-through spine, cold blocks move
// out-of-line past the hot window, and caller-determined callee branches
// (the branch-correlation application) orient toward their proven
// direction. Layout never changes semantics: the oracle cube proves the
// PGO engine byte-identical to the default layout on counters, estimates,
// and error strings.
//
// Derivation runs the stages named by Stages (DESIGN.md §16 documents
// them, enforced by docscheck): bl-heat accumulates intra-procedural edge
// heat from decoded BL paths, loop-spine adds the cross-backedge heat of
// decoded overlap routes, branch-orient adds proven interprocedural
// branch flow, chain greedily grows fall-through chains from each
// function's entry, and cold-tail appends never-executed blocks in id
// order.
package pgo

import (
	"encoding/json"
	"fmt"
	"io"

	"pathprof/internal/profile"
)

// Profile is the input to plan derivation: the counters of one run (or a
// fleet merge) plus the degree and window width they were collected at.
// core.LoadRun output maps onto it directly.
type Profile struct {
	// K is the overlap degree of the counters (-1 = BL only).
	K int
	// Iters is the window width the counters were collected at.
	Iters int
	// Counters holds the profile's counter maps.
	Counters *profile.Counters
}

// FuncLayout is one function's derived superblock ordering.
type FuncLayout struct {
	// Func is the program function index.
	Func int `json:"func"`
	// Name is the function's name (for human consumption; Func is
	// authoritative).
	Name string `json:"name"`
	// Order is a permutation of the function's block ids in emission
	// order; Order[0] is always the entry block.
	Order []int `json:"order"`
	// Hot is the number of leading Order entries placed by profile
	// signal; Order[Hot:] is the cold tail in block-id order.
	Hot int `json:"hot"`
}

// Identity reports whether the layout leaves the function's block order
// unchanged.
func (fl *FuncLayout) Identity() bool {
	for i, b := range fl.Order {
		if b != i {
			return false
		}
	}
	return true
}

// Plan is a whole-program layout plan, one FuncLayout per function in
// program index order.
type Plan struct {
	// K and Iters echo the profile the plan was derived from.
	K     int `json:"k"`
	Iters int `json:"iters"`
	// Funcs holds one layout per program function, in index order.
	Funcs []FuncLayout `json:"funcs"`
}

// Orders projects the plan onto the [][]int shape the compilers'
// CompileLayout entry points take (index = function index).
func (p *Plan) Orders() [][]int {
	out := make([][]int, len(p.Funcs))
	for i, fl := range p.Funcs {
		out[i] = fl.Order
	}
	return out
}

// Reordered counts functions whose layout differs from block-id order.
func (p *Plan) Reordered() int {
	n := 0
	for i := range p.Funcs {
		if !p.Funcs[i].Identity() {
			n++
		}
	}
	return n
}

// Encode writes the plan as indented JSON. Equal plans encode to
// byte-identical output (field order is fixed by the struct), which the
// determinism tests rely on.
func (p *Plan) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// DecodePlan reads a plan previously written by Encode.
func DecodePlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("pgo: decode plan: %w", err)
	}
	return &p, nil
}

// Stages names the plan-derivation stages in pipeline order. DESIGN.md
// §16's stage table must list exactly these names (docscheck enforces the
// match in both directions).
func Stages() []string {
	return []string{"bl-heat", "loop-spine", "branch-orient", "chain", "cold-tail"}
}
