package pgo

import (
	"fmt"
	"sort"

	"pathprof/internal/apps"
	"pathprof/internal/cfg"
	"pathprof/internal/estimate"
	"pathprof/internal/profile"
)

// Derive analyzes a profile against its program's static metadata and
// produces a layout plan. Derivation is deterministic: counter maps are
// only ever folded through commutative sums, and every ordering decision
// breaks ties toward the smaller block id, so the same profile always
// yields the same plan bytes.
func Derive(info *profile.Info, p *Profile) (*Plan, error) {
	nf := len(info.Funcs)
	if p.Counters == nil {
		return nil, fmt.Errorf("pgo: nil counters")
	}
	if len(p.Counters.BL) != nf {
		return nil, fmt.Errorf("pgo: profile has %d functions, program has %d",
			len(p.Counters.BL), nf)
	}

	// Per-function heat: edge heat drives chaining, block heat picks
	// chain restarts and separates hot blocks from the cold tail.
	edgeHeat := make([]map[cfg.Edge]uint64, nf)
	blockHeat := make([][]uint64, nf)
	for i, fi := range info.Funcs {
		edgeHeat[i] = map[cfg.Edge]uint64{}
		blockHeat[i] = make([]uint64, fi.G.Len())
	}

	// Stage bl-heat: decode every counted BL path and charge its blocks
	// and consecutive edges; a path ending at a backedge also charges the
	// backedge itself, so loop spines outweigh exits even under BL-only
	// profiles.
	for idx, fi := range info.Funcs {
		for id, n := range p.Counters.BL[idx] {
			path, err := fi.DAG.PathForID(id)
			if err != nil {
				return nil, fmt.Errorf("pgo: func %s: %w", fi.Fn.Name, err)
			}
			for bi, b := range path.Blocks {
				blockHeat[idx][b] += n
				if bi+1 < len(path.Blocks) {
					edgeHeat[idx][cfg.Edge{From: b, To: path.Blocks[bi+1]}] += n
				}
			}
			if be, ok := path.EndBackedge(); ok {
				edgeHeat[idx][be] += n
			}
		}
	}

	// Stage loop-spine: decode each overlap crossing's route through the
	// loop's degree-k extension region and charge the cross-iteration
	// edges — the signal BL profiles cannot see, and the reason the
	// dominant *overlapping* path (not just the hottest acyclic path)
	// becomes the fall-through spine.
	if p.K >= 0 {
		for lk, n := range p.Counters.Loop {
			if lk.Func < 0 || lk.Func >= nf {
				return nil, fmt.Errorf("pgo: loop counter names func %d of %d", lk.Func, nf)
			}
			fi := info.Funcs[lk.Func]
			if lk.Loop < 0 || lk.Loop >= len(fi.Loops) {
				return nil, fmt.Errorf("pgo: loop counter names loop %d of %d in %s",
					lk.Loop, len(fi.Loops), fi.Fn.Name)
			}
			li := fi.Loops[lk.Loop]
			x, err := li.Ext(li.EffectiveK(p.K))
			if err != nil {
				return nil, err
			}
			for c := 0; c < lk.NumCrossings(); c++ {
				route, _ := lk.Crossing(c)
				nodes, err := x.Decode(route)
				if err != nil {
					return nil, fmt.Errorf("pgo: func %s loop %d: %w", fi.Fn.Name, lk.Loop, err)
				}
				for bi, b := range nodes {
					blockHeat[lk.Func][b] += n
					if bi+1 < len(nodes) {
						edgeHeat[lk.Func][cfg.Edge{From: b, To: nodes[bi+1]}] += n
					}
				}
			}
		}
	}

	// Stage branch-orient: for every profiled call edge, ask the Type I
	// estimator which callee branches the caller provably decides
	// (internal/apps/branchcorr as a compiler input, not a report) and
	// charge the proven flow onto the callee's taken edge so chaining
	// lays the proven direction as the fall-through.
	for ck, calls := range p.Counters.Calls {
		if ck.Caller < 0 || ck.Caller >= nf || ck.Callee < 0 || ck.Callee >= nf {
			return nil, fmt.Errorf("pgo: call counter names funcs (%d,%d) of %d",
				ck.Caller, ck.Callee, nf)
		}
		caller := info.Funcs[ck.Caller]
		if ck.Site < 0 || ck.Site >= len(caller.CallSites) {
			return nil, fmt.Errorf("pgo: call counter names site %d of %d in %s",
				ck.Site, len(caller.CallSites), caller.Fn.Name)
		}
		cs := caller.CallSites[ck.Site]
		r, err := estimate.TypeI(info, caller, cs, ck.Callee,
			p.Counters.BL[ck.Caller], p.Counters.BL[ck.Callee],
			p.Counters.TypeI, calls, p.K, estimate.Paper)
		if err == estimate.ErrTooLarge {
			continue
		}
		if err != nil {
			return nil, err
		}
		fs, err := apps.BranchCorrelations(info, caller, cs, ck.Callee, r, 1)
		if err != nil {
			return nil, err
		}
		for _, f := range fs {
			edgeHeat[ck.Callee][cfg.Edge{From: f.Branch, To: f.Taken}] += uint64(f.ProvenFlow)
		}
	}

	// Stages chain + cold-tail, per function.
	plan := &Plan{K: p.K, Iters: p.Iters}
	for idx, fi := range info.Funcs {
		order, hot := chainFunc(fi.G, edgeHeat[idx], blockHeat[idx])
		plan.Funcs = append(plan.Funcs, FuncLayout{
			Func:  idx,
			Name:  fi.Fn.Name,
			Order: order,
			Hot:   hot,
		})
	}
	return plan, nil
}

// chainFunc greedily grows fall-through chains: starting at the entry,
// repeatedly follow the heaviest still-unplaced successor edge; when the
// chain dies, restart at the hottest unplaced block. Blocks with zero
// heat form the cold tail in id order, and a function with no heat at all
// keeps its identity order.
func chainFunc(g *cfg.Graph, edgeHeat map[cfg.Edge]uint64, blockHeat []uint64) (order []int, hot int) {
	n := g.Len()
	var total uint64
	for _, h := range blockHeat {
		total += h
	}
	if total == 0 {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order, 0
	}

	order = make([]int, 0, n)
	placed := make([]bool, n)
	place := func(b int) {
		placed[b] = true
		order = append(order, b)
	}
	cur := int(g.Entry())
	place(cur)
	for {
		// Heaviest unplaced successor edge; ascending scan with a
		// strict comparison keeps the smaller id on ties.
		next := -1
		var best uint64
		for _, s := range sortedSuccs(g, cfg.NodeID(cur)) {
			if placed[s] {
				continue
			}
			if h := edgeHeat[cfg.Edge{From: cfg.NodeID(cur), To: s}]; h > best {
				best, next = h, int(s)
			}
		}
		if next < 0 {
			// Chain died: restart at the hottest unplaced block.
			var bh uint64
			for b := 0; b < n; b++ {
				if !placed[b] && blockHeat[b] > bh {
					bh, next = blockHeat[b], b
				}
			}
			if next < 0 {
				break
			}
		}
		place(next)
		cur = next
	}
	hot = len(order)
	for b := 0; b < n; b++ {
		if !placed[b] {
			order = append(order, b)
		}
	}
	return order, hot
}

// sortedSuccs returns id's successors in ascending block-id order (the
// graph's own successor order is terminator order, which is already
// deterministic, but ascending ids make the tie-break explicit).
func sortedSuccs(g *cfg.Graph, id cfg.NodeID) []cfg.NodeID {
	ss := g.Succs(id)
	out := make([]cfg.NodeID, len(ss))
	copy(out, ss)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
