package pgo_test

import (
	"bytes"
	"testing"

	"pathprof/internal/core"
	"pathprof/internal/instrument"
	"pathprof/internal/pgo"
	"pathprof/internal/pipeline"
	"pathprof/internal/regvm"
	"pathprof/internal/vm"
	"pathprof/internal/workload"
)

// profileBenchmark runs one instrumented profile of b at degree k and
// returns its serialized bytes — the plan's input format.
func profileBenchmark(t *testing.T, p *pipeline.Pipeline, b *workload.Benchmark, k int) []byte {
	t.Helper()
	cfg := instrument.Config{K: k, Loops: k >= 0, Interproc: k >= 0}
	run, err := p.Execute(cfg, b.Seed, nil)
	if err != nil {
		t.Fatalf("%s: profile run: %v", b.Name, err)
	}
	var buf bytes.Buffer
	if err := core.SaveRun(&buf, core.RunFromCounters(run.K, run.Iters, run.Counters)); err != nil {
		t.Fatalf("%s: save run: %v", b.Name, err)
	}
	return buf.Bytes()
}

// loadProfile decodes serialized run bytes into derivation input.
func loadProfile(t *testing.T, raw []byte) *pgo.Profile {
	t.Helper()
	run, err := core.LoadRun(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("load run: %v", err)
	}
	return &pgo.Profile{K: run.K, Iters: run.Iters, Counters: run.Counters}
}

// TestPlanDeterminism is the repo's byte-identity discipline applied to
// the PGO loop on all 9 benchmarks: the same profile bytes must derive a
// byte-identical plan, and that plan must recompile to byte-identical
// register and bytecode programs. The profile is decoded twice from the
// same bytes so map-iteration nondeterminism in derivation would get two
// independent chances to show.
func TestPlanDeterminism(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			p, err := pipeline.New(prog, pipeline.Options{})
			if err != nil {
				t.Fatal(err)
			}
			raw := profileBenchmark(t, p, b, 1)

			prof1, prof2 := loadProfile(t, raw), loadProfile(t, raw)
			plan1, err := pgo.Derive(p.Info, prof1)
			if err != nil {
				t.Fatalf("derive: %v", err)
			}
			plan2, err := pgo.Derive(p.Info, prof2)
			if err != nil {
				t.Fatalf("derive: %v", err)
			}
			var enc1, enc2 bytes.Buffer
			if err := plan1.Encode(&enc1); err != nil {
				t.Fatal(err)
			}
			if err := plan2.Encode(&enc2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
				t.Fatalf("same profile bytes derived different plans:\n%s\n---\n%s", enc1.String(), enc2.String())
			}

			// The derived layout must be consumable: both engines accept
			// it (permutation + entry-first validation happens inside),
			// and recompiling twice renders byte-identical code.
			cfg := instrument.Config{K: 1, Loops: true, Interproc: true}
			iplan, err := p.Plan(cfg)
			if err != nil {
				t.Fatal(err)
			}
			code1, err := regvm.CompileLayout(prog, iplan, plan1.Orders())
			if err != nil {
				t.Fatalf("regvm layout compile: %v", err)
			}
			code2, err := regvm.CompileLayout(prog, iplan, plan2.Orders())
			if err != nil {
				t.Fatalf("regvm layout compile: %v", err)
			}
			if code1.Disasm() != code2.Disasm() {
				t.Fatal("same plan compiled to different register code")
			}
			if _, err := vm.CompileLayout(prog, iplan, plan1.Orders()); err != nil {
				t.Fatalf("vm layout compile: %v", err)
			}

			// The plan must actually reorder something on a profiled
			// benchmark — a PGO pass that never moves code proves nothing.
			if plan1.Reordered() == 0 {
				t.Fatalf("%s: plan reordered no functions", b.Name)
			}
		})
	}
}

// TestDeriveRejectsMismatchedProfile pins the mismatch guard: a profile
// whose function count disagrees with the program must refuse to derive
// instead of producing a silently wrong plan.
func TestDeriveRejectsMismatchedProfile(t *testing.T) {
	b := workload.ByName("300.twolf")
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw := profileBenchmark(t, p, b, 1)
	prof := loadProfile(t, raw)
	prof.Counters.BL = prof.Counters.BL[:1]
	if _, err := pgo.Derive(p.Info, prof); err == nil {
		t.Fatal("Derive accepted a profile with the wrong function count")
	}
}
