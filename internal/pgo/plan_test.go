package pgo

import (
	"bytes"
	"reflect"
	"testing"
)

func TestPlanHelpers(t *testing.T) {
	p := &Plan{K: 1, Iters: 2, Funcs: []FuncLayout{
		{Func: 0, Name: "main", Order: []int{0, 2, 1}, Hot: 2},
		{Func: 1, Name: "f", Order: []int{0, 1}, Hot: 0},
	}}
	if p.Funcs[0].Identity() {
		t.Error("reordered layout reported as identity")
	}
	if !p.Funcs[1].Identity() {
		t.Error("identity layout not reported as identity")
	}
	if got := p.Reordered(); got != 1 {
		t.Errorf("Reordered() = %d, want 1", got)
	}
	want := [][]int{{0, 2, 1}, {0, 1}}
	if got := p.Orders(); !reflect.DeepEqual(got, want) {
		t.Errorf("Orders() = %v, want %v", got, want)
	}
}

func TestPlanEncodeRoundTrip(t *testing.T) {
	p := &Plan{K: 2, Iters: 3, Funcs: []FuncLayout{
		{Func: 0, Name: "main", Order: []int{0, 3, 1, 2}, Hot: 3},
	}}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	back, err := DecodePlan(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip changed the plan: %+v vs %+v", p, back)
	}
	var buf2 bytes.Buffer
	if err := back.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Fatal("re-encoding a decoded plan changed its bytes")
	}
	if _, err := DecodePlan(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("DecodePlan accepted garbage")
	}
}

func TestStages(t *testing.T) {
	s := Stages()
	if len(s) != 5 {
		t.Fatalf("Stages() lists %d stages, want 5", len(s))
	}
	seen := map[string]bool{}
	for _, name := range s {
		if name == "" || seen[name] {
			t.Fatalf("stage name %q empty or duplicated", name)
		}
		seen[name] = true
	}
}
