// Package pipeline owns the static artifacts of a profiled program — the
// analyzed profile.Info (CFGs, BL DAGs and numberings, loop info, and the
// lazily grown per-degree OL extension regions hanging off it) and the
// instrumentation plans keyed by configuration — built once and shared,
// concurrency-safe, across every run of the program. A degree sweep that
// used to rebuild plans, overlapping graphs, and chord placements per run
// now pays for each exactly once; the shared worker Pool bounds how many
// runs execute at a time.
//
// The layering: core.Session, experiments.Collect/CollectAll, and both
// CLIs all drive their runs through a Pipeline instead of calling
// profile.Analyze / instrument.New themselves.
package pipeline

import (
	"io"
	"sync"
	"time"

	"pathprof/internal/instrument"
	"pathprof/internal/interp"
	"pathprof/internal/ir"
	"pathprof/internal/lang"
	"pathprof/internal/obs"
	"pathprof/internal/overhead"
	"pathprof/internal/profile"
	"pathprof/internal/trace"
	"pathprof/internal/vm"
)

// Engine selects the execution engine instrumented runs use.
type Engine int

const (
	// EngineVM is the bytecode engine with fused probe opcodes (the
	// default, and the zero value).
	EngineVM Engine = iota
	// EngineTree is the tree-walking reference interpreter with
	// listener-dispatched probes.
	EngineTree
)

// String implements flag-friendly rendering.
func (e Engine) String() string {
	if e == EngineTree {
		return "tree"
	}
	return "vm"
}

// ParseEngine maps a CLI flag value to an Engine.
func ParseEngine(s string) (Engine, bool) {
	switch s {
	case "vm":
		return EngineVM, true
	case "tree":
		return EngineTree, true
	}
	return EngineVM, false
}

// Options configures a Pipeline.
type Options struct {
	// Limits bound the static enumerations (zero value = defaults).
	Limits profile.Limits
	// Store selects the counter-store layout runs write through (zero
	// value = nested maps; StoreFlat is the dense layout, StoreArena the
	// dense-arena layout).
	Store profile.StoreKind
	// Engine selects the execution engine (zero value = the bytecode VM).
	Engine Engine
	// Pool is the worker pool sweeps draw slots from (nil = the shared
	// process-wide pool).
	Pool *Pool
}

// Pipeline is the per-program artifact cache.
type Pipeline struct {
	Prog *ir.Program
	Info *profile.Info

	opts Options

	mu    sync.Mutex
	plans map[planKey]*planEntry
	codes map[planKey]*codeEntry
}

// planKey identifies one instrumentation plan. Selection and ChordProfile
// cache by pointer identity: distinct selections (or chord weightings) are
// distinct plans, and the common nil means "everything"/"uniform".
type planKey struct {
	k, iters                  int
	loops, interproc, chordBL bool
	selection                 *profile.Selection
	chordProfile              *profile.Counters
}

func keyOf(cfg instrument.Config) planKey {
	return planKey{
		k:            cfg.K,
		iters:        cfg.EffIters(),
		loops:        cfg.Loops,
		interproc:    cfg.Interproc,
		chordBL:      cfg.ChordBL,
		selection:    cfg.Selection,
		chordProfile: cfg.ChordProfile,
	}
}

// planEntry is a singleflight-style slot: the first caller builds, every
// concurrent and later caller waits and shares the result.
type planEntry struct {
	once sync.Once
	plan *instrument.Plan
	err  error
}

// codeEntry caches one configuration's compiled bytecode the same way.
type codeEntry struct {
	once sync.Once
	code *vm.Program
	err  error
}

// New analyzes an already-lowered program and wraps it in a Pipeline.
func New(prog *ir.Program, opts Options) (*Pipeline, error) {
	info, err := profile.Analyze(prog, opts.Limits)
	if err != nil {
		return nil, err
	}
	// Warm the program's lazy name index single-threaded so concurrent
	// machines only ever read it.
	prog.FuncByName("main")
	return &Pipeline{
		Prog: prog, Info: info, opts: opts,
		plans: map[planKey]*planEntry{},
		codes: map[planKey]*codeEntry{},
	}, nil
}

// Compile compiles source and wraps it in a Pipeline.
func Compile(source string, opts Options) (*Pipeline, error) {
	prog, err := lang.Compile(source)
	if err != nil {
		return nil, err
	}
	return New(prog, opts)
}

// Pool returns the pool this pipeline's sweeps use.
func (p *Pipeline) Pool() *Pool {
	if p.opts.Pool != nil {
		return p.opts.Pool
	}
	return Shared()
}

// NewStore allocates a counter store of the pipeline's configured kind,
// sized for iters-iteration loop windows (only the arena layout is
// sensitive to the width; see profile.NewStore).
func (p *Pipeline) NewStore(iters int) profile.CounterStore {
	return profile.NewStore(p.opts.Store, p.Info, iters)
}

// Plan returns the instrumentation plan for cfg, building it at most once
// per configuration even under concurrent callers.
func (p *Pipeline) Plan(cfg instrument.Config) (*instrument.Plan, error) {
	key := keyOf(cfg)
	p.mu.Lock()
	e := p.plans[key]
	if e == nil {
		e = &planEntry{}
		p.plans[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		e.plan, e.err = instrument.BuildPlan(p.Info, cfg)
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.plan",
				"k", cfg.K, "loops", cfg.Loops, "interproc", cfg.Interproc,
				"elapsed_ms", time.Since(start).Milliseconds(), "err", errString(e.err))
		}
	})
	return e.plan, e.err
}

// errString renders an error for a log attr without panicking on nil.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// Code returns the compiled bytecode (with cfg's probes fused in) for the
// VM engine, building it at most once per configuration — the compiled
// program is a cached artifact alongside the plan it embeds, shared across
// a degree sweep's runs.
func (p *Pipeline) Code(cfg instrument.Config) (*vm.Program, error) {
	plan, err := p.Plan(cfg)
	if err != nil {
		return nil, err
	}
	key := keyOf(cfg)
	p.mu.Lock()
	e := p.codes[key]
	if e == nil {
		e = &codeEntry{}
		p.codes[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		e.code, e.err = vm.Compile(p.Prog, plan)
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.code",
				"k", cfg.K, "elapsed_ms", time.Since(start).Milliseconds(), "err", errString(e.err))
		}
	})
	return e.code, e.err
}

// CachedPlans reports how many plans the cache holds (for tests and
// diagnostics).
func (p *Pipeline) CachedPlans() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.plans)
}

// CachedCodes reports how many compiled bytecode programs the cache holds.
func (p *Pipeline) CachedCodes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.codes)
}

// Run is the outcome of one instrumented execution.
type Run struct {
	// K is the profiled degree (-1 = Ball-Larus only).
	K int
	// Iters is the multi-iteration window width the loop counters were
	// collected at (2 = the classic two-iteration setting).
	Iters int
	// Selection is the structure selection the run used (nil = all).
	Selection *profile.Selection
	// Counters holds every collected counter.
	Counters *profile.Counters
	// Overhead reports probe cost against base cost.
	Overhead overhead.Report
	// Steps is the number of executed basic blocks.
	Steps int64
	// BaseOps is the uninstrumented operation count of the run.
	BaseOps int64
}

// Execute performs one instrumented run of the program at cfg with the
// given seed, through the cached plan (and, on the VM engine, the cached
// bytecode). out, when non-nil, receives the program's print output. Safe
// for concurrent callers: the plan and static artifacts are shared, machine
// and counter store are per-run.
func (p *Pipeline) Execute(cfg instrument.Config, seed uint64, out io.Writer) (*Run, error) {
	return p.ExecuteStore(p.opts.Engine, cfg, seed, out, p.NewStore(cfg.EffIters()), 0)
}

// ExecuteStore is Execute with the engine, counter store, and step limit
// (0 = the engine default) chosen per call — the entry point the
// differential oracle sweeps its engine x store matrix through.
func (p *Pipeline) ExecuteStore(eng Engine, cfg instrument.Config, seed uint64, out io.Writer, store profile.CounterStore, maxSteps int64) (*Run, error) {
	if eng == EngineVM {
		code, err := p.Code(cfg)
		if err != nil {
			return nil, err
		}
		m := vm.NewMachine(code, seed)
		if out != nil {
			m.Out = out
		}
		if maxSteps > 0 {
			m.MaxSteps = maxSteps
		}
		start := time.Now()
		if err := m.Run(store); err != nil {
			return nil, err
		}
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.execute",
				"engine", eng.String(), "k", cfg.K, "seed", seed,
				"steps", m.Steps, "elapsed_ms", time.Since(start).Milliseconds())
		}
		return &Run{
			K:         cfg.K,
			Iters:     cfg.EffIters(),
			Selection: cfg.Selection,
			Counters:  store.Counters(),
			Overhead:  m.Report(),
			Steps:     m.Steps,
			BaseOps:   m.BaseOps,
		}, nil
	}

	plan, err := p.Plan(cfg)
	if err != nil {
		return nil, err
	}
	m := interp.New(p.Prog, seed)
	if out != nil {
		m.Out = out
	}
	if maxSteps > 0 {
		m.MaxSteps = maxSteps
	}
	rt := plan.Attach(m, store)
	start := time.Now()
	if err := m.Run(); err != nil {
		return nil, err
	}
	if rt.Err != nil {
		return nil, rt.Err
	}
	if obs.DebugEnabled() {
		obs.Logger().Debug("pipeline.execute",
			"engine", eng.String(), "k", cfg.K, "seed", seed,
			"steps", m.Steps, "elapsed_ms", time.Since(start).Milliseconds())
	}
	return &Run{
		K:         cfg.K,
		Iters:     cfg.EffIters(),
		Selection: cfg.Selection,
		Counters:  rt.Counters(),
		Overhead:  rt.Report(m.BaseOps),
		Steps:     m.Steps,
		BaseOps:   m.BaseOps,
	}, nil
}

// Trace performs one ground-truth tracer run, reusing the cached Info.
// When wpp is true the full block trace is accumulated as a SEQUITUR
// grammar on the tracer's WPP field.
func (p *Pipeline) Trace(seed uint64, wpp bool, out io.Writer) (*trace.Tracer, *interp.Machine, error) {
	m := interp.New(p.Prog, seed)
	if out != nil {
		m.Out = out
	}
	tr := trace.NewTracer(p.Info, m)
	if wpp {
		tr.EnableWPP()
	}
	if err := m.Run(); err != nil {
		return nil, nil, err
	}
	if tr.Err != nil {
		return nil, nil, tr.Err
	}
	return tr, m, nil
}
