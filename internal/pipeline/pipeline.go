// Package pipeline owns the static artifacts of a profiled program — the
// analyzed profile.Info (CFGs, BL DAGs and numberings, loop info, and the
// lazily grown per-degree OL extension regions hanging off it) and the
// instrumentation plans keyed by configuration — built once and shared,
// concurrency-safe, across every run of the program. A degree sweep that
// used to rebuild plans, overlapping graphs, and chord placements per run
// now pays for each exactly once; the shared worker Pool bounds how many
// runs execute at a time.
//
// The layering: core.Session, experiments.Collect/CollectAll, and both
// CLIs all drive their runs through a Pipeline instead of calling
// profile.Analyze / instrument.New themselves.
package pipeline

import (
	"io"
	"sync"
	"time"

	"pathprof/internal/instrument"
	"pathprof/internal/interp"
	"pathprof/internal/ir"
	"pathprof/internal/lang"
	"pathprof/internal/obs"
	"pathprof/internal/overhead"
	"pathprof/internal/pgo"
	"pathprof/internal/profile"
	"pathprof/internal/regvm"
	"pathprof/internal/trace"
	"pathprof/internal/vm"
)

// Engine selects the execution engine instrumented runs use.
type Engine int

const (
	// EngineReg is the register machine with superinstruction fusion and
	// pooled zero-alloc run state (the default, and the zero value).
	EngineReg Engine = iota
	// EngineVM is the bytecode engine with fused probe opcodes.
	EngineVM
	// EngineTree is the tree-walking reference interpreter with
	// listener-dispatched probes.
	EngineTree
	// EnginePGO is the register machine running code recompiled with
	// profile-guided layout (Options.PGO, or a self-training run when
	// nil). Layout only moves code, so every observable — counters,
	// output, error strings — stays byte-identical to EngineReg.
	EnginePGO
)

// String implements flag-friendly rendering.
func (e Engine) String() string {
	switch e {
	case EngineVM:
		return "vm"
	case EngineTree:
		return "tree"
	case EnginePGO:
		return "pgo"
	}
	return "regvm"
}

// ParseEngine maps a CLI flag value to an Engine.
func ParseEngine(s string) (Engine, bool) {
	switch s {
	case "regvm":
		return EngineReg, true
	case "vm":
		return EngineVM, true
	case "tree":
		return EngineTree, true
	case "pgo":
		return EnginePGO, true
	}
	return EngineReg, false
}

// Options configures a Pipeline.
type Options struct {
	// Limits bound the static enumerations (zero value = defaults).
	Limits profile.Limits
	// Store selects the counter-store layout runs write through (zero
	// value = nested maps; StoreFlat is the dense layout, StoreArena the
	// dense-arena layout).
	Store profile.StoreKind
	// Engine selects the execution engine (zero value = the register
	// machine).
	Engine Engine
	// PGO is the profile EnginePGO derives its layout plan from. When
	// nil, EnginePGO self-trains: one register-engine run at the
	// requested seed supplies the counters.
	PGO *pgo.Profile
	// Pool is the worker pool sweeps draw slots from (nil = the shared
	// process-wide pool).
	Pool *Pool
}

// Pipeline is the per-program artifact cache.
type Pipeline struct {
	Prog *ir.Program
	Info *profile.Info

	opts Options

	mu       sync.Mutex
	plans    map[planKey]*planEntry
	codes    map[planKey]*codeEntry
	regCodes map[planKey]*regEntry
	pgoCodes map[pgoKey]*pgoEntry
}

// planKey identifies one instrumentation plan. Selection and ChordProfile
// cache by pointer identity: distinct selections (or chord weightings) are
// distinct plans, and the common nil means "everything"/"uniform".
type planKey struct {
	k, iters                  int
	loops, interproc, chordBL bool
	selection                 *profile.Selection
	chordProfile              *profile.Counters
}

func keyOf(cfg instrument.Config) planKey {
	return planKey{
		k:            cfg.K,
		iters:        cfg.EffIters(),
		loops:        cfg.Loops,
		interproc:    cfg.Interproc,
		chordBL:      cfg.ChordBL,
		selection:    cfg.Selection,
		chordProfile: cfg.ChordProfile,
	}
}

// planEntry is a singleflight-style slot: the first caller builds, every
// concurrent and later caller waits and shares the result.
type planEntry struct {
	once sync.Once
	plan *instrument.Plan
	err  error
}

// codeEntry caches one configuration's compiled bytecode the same way,
// plus a free pool of warmed machines whose slabs (globals, arrays, frame
// free-list) are recycled across runs of this code.
type codeEntry struct {
	once sync.Once
	code *vm.Program
	err  error
	pool sync.Pool
}

// regEntry caches one configuration's register code and its machine pool.
// Pooling hangs off the code entry because a machine's slab geometry is
// code-specific; shard fan-out over the same configuration pays the
// machine's allocations exactly once per worker.
type regEntry struct {
	once sync.Once
	code *regvm.Program
	err  error
	pool sync.Pool
}

// pgoKey identifies one PGO compilation. With an explicit Options.PGO
// profile the layout depends only on the configuration (seed and step
// limit are zeroed); a self-training compilation is additionally keyed by
// the training run's seed and step limit, so differential sweeps that
// revisit a (cfg, seed) cell share one trained code object while distinct
// seeds train separately.
type pgoKey struct {
	plan     planKey
	seed     uint64
	maxSteps int64
}

// pgoEntry caches one PGO compilation end to end: the derived layout
// plan, the recompiled register code, and its machine pool.
type pgoEntry struct {
	once sync.Once
	plan *pgo.Plan
	code *regvm.Program
	err  error
	pool sync.Pool
}

// New analyzes an already-lowered program and wraps it in a Pipeline.
func New(prog *ir.Program, opts Options) (*Pipeline, error) {
	info, err := profile.Analyze(prog, opts.Limits)
	if err != nil {
		return nil, err
	}
	// Warm the program's lazy name index single-threaded so concurrent
	// machines only ever read it.
	prog.FuncByName("main")
	return &Pipeline{
		Prog: prog, Info: info, opts: opts,
		plans:    map[planKey]*planEntry{},
		codes:    map[planKey]*codeEntry{},
		regCodes: map[planKey]*regEntry{},
		pgoCodes: map[pgoKey]*pgoEntry{},
	}, nil
}

// Compile compiles source and wraps it in a Pipeline.
func Compile(source string, opts Options) (*Pipeline, error) {
	prog, err := lang.Compile(source)
	if err != nil {
		return nil, err
	}
	return New(prog, opts)
}

// Pool returns the pool this pipeline's sweeps use.
func (p *Pipeline) Pool() *Pool {
	if p.opts.Pool != nil {
		return p.opts.Pool
	}
	return Shared()
}

// NewStore allocates a counter store of the pipeline's configured kind,
// sized for iters-iteration loop windows (only the arena layout is
// sensitive to the width; see profile.NewStore).
func (p *Pipeline) NewStore(iters int) profile.CounterStore {
	return profile.NewStore(p.opts.Store, p.Info, iters)
}

// Plan returns the instrumentation plan for cfg, building it at most once
// per configuration even under concurrent callers.
func (p *Pipeline) Plan(cfg instrument.Config) (*instrument.Plan, error) {
	key := keyOf(cfg)
	p.mu.Lock()
	e := p.plans[key]
	if e == nil {
		e = &planEntry{}
		p.plans[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		e.plan, e.err = instrument.BuildPlan(p.Info, cfg)
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.plan",
				"k", cfg.K, "loops", cfg.Loops, "interproc", cfg.Interproc,
				"elapsed_ms", time.Since(start).Milliseconds(), "err", errString(e.err))
		}
	})
	return e.plan, e.err
}

// errString renders an error for a log attr without panicking on nil.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// vmCode returns the singleflight cache slot holding cfg's compiled
// bytecode and machine pool, building the code at most once per
// configuration.
func (p *Pipeline) vmCode(cfg instrument.Config) (*codeEntry, error) {
	plan, err := p.Plan(cfg)
	if err != nil {
		return nil, err
	}
	key := keyOf(cfg)
	p.mu.Lock()
	e := p.codes[key]
	if e == nil {
		e = &codeEntry{}
		p.codes[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		e.code, e.err = vm.Compile(p.Prog, plan)
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.code",
				"engine", "vm", "k", cfg.K,
				"elapsed_ms", time.Since(start).Milliseconds(), "err", errString(e.err))
		}
	})
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// machine checks a warmed machine out of the entry's pool (or allocates the
// first one), reset for a run at seed. Callers return it with e.pool.Put.
func (e *codeEntry) machine(seed uint64) *vm.Machine {
	if m, ok := e.pool.Get().(*vm.Machine); ok {
		m.Reset(seed)
		return m
	}
	return vm.NewMachine(e.code, seed)
}

// regCode is vmCode for the register engine.
func (p *Pipeline) regCode(cfg instrument.Config) (*regEntry, error) {
	plan, err := p.Plan(cfg)
	if err != nil {
		return nil, err
	}
	key := keyOf(cfg)
	p.mu.Lock()
	e := p.regCodes[key]
	if e == nil {
		e = &regEntry{}
		p.regCodes[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		e.code, e.err = regvm.Compile(p.Prog, plan)
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.code",
				"engine", "regvm", "k", cfg.K,
				"elapsed_ms", time.Since(start).Milliseconds(), "err", errString(e.err))
		}
	})
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// machine is codeEntry.machine for the register engine.
func (e *regEntry) machine(seed uint64) *regvm.Machine {
	if m, ok := e.pool.Get().(*regvm.Machine); ok {
		m.Reset(seed)
		return m
	}
	return regvm.NewMachine(e.code, seed)
}

// pgoCode returns the singleflight cache slot holding cfg's PGO-layout
// register code: the layout plan derives from Options.PGO when set,
// otherwise from a self-training register-engine run at (seed, maxSteps).
func (p *Pipeline) pgoCode(cfg instrument.Config, seed uint64, maxSteps int64) (*pgoEntry, error) {
	plan, err := p.Plan(cfg)
	if err != nil {
		return nil, err
	}
	key := pgoKey{plan: keyOf(cfg)}
	if p.opts.PGO == nil {
		key.seed, key.maxSteps = seed, maxSteps
	}
	p.mu.Lock()
	e := p.pgoCodes[key]
	if e == nil {
		e = &pgoEntry{}
		p.pgoCodes[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		prof := p.opts.PGO
		if prof == nil {
			// Self-train: one register-engine run at this seed into a
			// private nested store. A failing training run (step limit,
			// runtime error) still trains — the partial counters derive
			// a deterministic plan, and the PGO run then reproduces the
			// same error byte-identically.
			store := profile.NewStore(profile.StoreNested, p.Info, cfg.EffIters())
			if _, err := p.ExecuteStore(EngineReg, cfg, seed, nil, store, maxSteps); err != nil && obs.DebugEnabled() {
				obs.Logger().Debug("pipeline.pgo.train", "k", cfg.K, "seed", seed, "err", err.Error())
			}
			prof = &pgo.Profile{K: cfg.K, Iters: cfg.EffIters(), Counters: store.Counters()}
		}
		var lp *pgo.Plan
		lp, e.err = pgo.Derive(p.Info, prof)
		if e.err != nil {
			return
		}
		e.plan = lp
		e.code, e.err = regvm.CompileLayout(p.Prog, plan, lp.Orders())
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.code",
				"engine", "pgo", "k", cfg.K, "reordered", lp.Reordered(),
				"elapsed_ms", time.Since(start).Milliseconds(), "err", errString(e.err))
		}
	})
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// machine is regEntry.machine for the PGO-layout code.
func (e *pgoEntry) machine(seed uint64) *regvm.Machine {
	if m, ok := e.pool.Get().(*regvm.Machine); ok {
		m.Reset(seed)
		return m
	}
	return regvm.NewMachine(e.code, seed)
}

// Code returns the compiled bytecode (with cfg's probes fused in) for the
// VM engine, building it at most once per configuration — the compiled
// program is a cached artifact alongside the plan it embeds, shared across
// a degree sweep's runs.
func (p *Pipeline) Code(cfg instrument.Config) (*vm.Program, error) {
	e, err := p.vmCode(cfg)
	if err != nil {
		return nil, err
	}
	return e.code, nil
}

// RegCode is Code for the register engine, exposing the compiled register
// program (and its fusion statistics) for tests and experiments.
func (p *Pipeline) RegCode(cfg instrument.Config) (*regvm.Program, error) {
	e, err := p.regCode(cfg)
	if err != nil {
		return nil, err
	}
	return e.code, nil
}

// PGOCode is RegCode for the PGO engine: the register program recompiled
// with the layout plan of Options.PGO (or of a self-training run at seed
// with the default step limit when no profile is set). It warms the same
// cache slot EnginePGO runs execute from.
func (p *Pipeline) PGOCode(cfg instrument.Config, seed uint64) (*regvm.Program, error) {
	e, err := p.pgoCode(cfg, seed, 0)
	if err != nil {
		return nil, err
	}
	return e.code, nil
}

// PGOPlan exposes the layout plan behind PGOCode for the same (cfg, seed)
// slot — the CLI's layout summary and the determinism tests read it.
func (p *Pipeline) PGOPlan(cfg instrument.Config, seed uint64) (*pgo.Plan, error) {
	e, err := p.pgoCode(cfg, seed, 0)
	if err != nil {
		return nil, err
	}
	return e.plan, nil
}

// CachedPlans reports how many plans the cache holds (for tests and
// diagnostics).
func (p *Pipeline) CachedPlans() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.plans)
}

// CachedCodes reports how many compiled bytecode programs the cache holds.
func (p *Pipeline) CachedCodes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.codes)
}

// Run is the outcome of one instrumented execution.
type Run struct {
	// K is the profiled degree (-1 = Ball-Larus only).
	K int
	// Iters is the multi-iteration window width the loop counters were
	// collected at (2 = the classic two-iteration setting).
	Iters int
	// Selection is the structure selection the run used (nil = all).
	Selection *profile.Selection
	// Counters holds every collected counter.
	Counters *profile.Counters
	// Overhead reports probe cost against base cost.
	Overhead overhead.Report
	// Steps is the number of executed basic blocks.
	Steps int64
	// BaseOps is the uninstrumented operation count of the run.
	BaseOps int64
}

// Execute performs one instrumented run of the program at cfg with the
// given seed, through the cached plan (and, on the register and bytecode
// engines, the cached compiled code and a pooled machine). out, when
// non-nil, receives the program's print output. Safe for concurrent
// callers: the plan and static artifacts are shared, machine and counter
// store are per-run (machines check out of a per-code pool).
func (p *Pipeline) Execute(cfg instrument.Config, seed uint64, out io.Writer) (*Run, error) {
	return p.ExecuteStore(p.opts.Engine, cfg, seed, out, p.NewStore(cfg.EffIters()), 0)
}

// ExecuteStore is Execute with the engine, counter store, and step limit
// (0 = the engine default) chosen per call — the entry point the
// differential oracle sweeps its engine x store matrix through.
func (p *Pipeline) ExecuteStore(eng Engine, cfg instrument.Config, seed uint64, out io.Writer, store profile.CounterStore, maxSteps int64) (*Run, error) {
	switch eng {
	case EngineReg:
		e, err := p.regCode(cfg)
		if err != nil {
			return nil, err
		}
		m := e.machine(seed)
		defer e.pool.Put(m)
		if out != nil {
			m.Out = out
		}
		if maxSteps > 0 {
			m.MaxSteps = maxSteps
		}
		start := time.Now()
		if err := m.Run(store); err != nil {
			return nil, err
		}
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.execute",
				"engine", eng.String(), "k", cfg.K, "seed", seed,
				"steps", m.Steps, "elapsed_ms", time.Since(start).Milliseconds())
		}
		return &Run{
			K:         cfg.K,
			Iters:     cfg.EffIters(),
			Selection: cfg.Selection,
			Counters:  store.Counters(),
			Overhead:  m.Report(),
			Steps:     m.Steps,
			BaseOps:   m.BaseOps,
		}, nil

	case EnginePGO:
		e, err := p.pgoCode(cfg, seed, maxSteps)
		if err != nil {
			return nil, err
		}
		m := e.machine(seed)
		defer e.pool.Put(m)
		if out != nil {
			m.Out = out
		}
		if maxSteps > 0 {
			m.MaxSteps = maxSteps
		}
		start := time.Now()
		if err := m.Run(store); err != nil {
			return nil, err
		}
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.execute",
				"engine", eng.String(), "k", cfg.K, "seed", seed,
				"steps", m.Steps, "elapsed_ms", time.Since(start).Milliseconds())
		}
		return &Run{
			K:         cfg.K,
			Iters:     cfg.EffIters(),
			Selection: cfg.Selection,
			Counters:  store.Counters(),
			Overhead:  m.Report(),
			Steps:     m.Steps,
			BaseOps:   m.BaseOps,
		}, nil

	case EngineVM:
		e, err := p.vmCode(cfg)
		if err != nil {
			return nil, err
		}
		m := e.machine(seed)
		defer e.pool.Put(m)
		if out != nil {
			m.Out = out
		}
		if maxSteps > 0 {
			m.MaxSteps = maxSteps
		}
		start := time.Now()
		if err := m.Run(store); err != nil {
			return nil, err
		}
		if obs.DebugEnabled() {
			obs.Logger().Debug("pipeline.execute",
				"engine", eng.String(), "k", cfg.K, "seed", seed,
				"steps", m.Steps, "elapsed_ms", time.Since(start).Milliseconds())
		}
		return &Run{
			K:         cfg.K,
			Iters:     cfg.EffIters(),
			Selection: cfg.Selection,
			Counters:  store.Counters(),
			Overhead:  m.Report(),
			Steps:     m.Steps,
			BaseOps:   m.BaseOps,
		}, nil
	}

	plan, err := p.Plan(cfg)
	if err != nil {
		return nil, err
	}
	m := interp.New(p.Prog, seed)
	if out != nil {
		m.Out = out
	}
	if maxSteps > 0 {
		m.MaxSteps = maxSteps
	}
	rt := plan.Attach(m, store)
	start := time.Now()
	if err := m.Run(); err != nil {
		return nil, err
	}
	if rt.Err != nil {
		return nil, rt.Err
	}
	if obs.DebugEnabled() {
		obs.Logger().Debug("pipeline.execute",
			"engine", eng.String(), "k", cfg.K, "seed", seed,
			"steps", m.Steps, "elapsed_ms", time.Since(start).Milliseconds())
	}
	return &Run{
		K:         cfg.K,
		Iters:     cfg.EffIters(),
		Selection: cfg.Selection,
		Counters:  rt.Counters(),
		Overhead:  rt.Report(m.BaseOps),
		Steps:     m.Steps,
		BaseOps:   m.BaseOps,
	}, nil
}

// ExecuteSteady performs one instrumented run on the register engine with
// no result materialization: counters accumulate in the caller's store,
// print output is discarded, and the machine comes from (and returns to)
// the per-code pool, so in steady state the whole call is allocation-free.
// This is the hot path for shard fan-out over one configuration and for
// the steady-state benchmarks; callers read or Reset the store themselves.
func (p *Pipeline) ExecuteSteady(cfg instrument.Config, seed uint64, store profile.CounterStore) error {
	e, err := p.regCode(cfg)
	if err != nil {
		return err
	}
	m := e.machine(seed)
	err = m.Run(store)
	e.pool.Put(m)
	return err
}

// Trace performs one ground-truth tracer run, reusing the cached Info.
// When wpp is true the full block trace is accumulated as a SEQUITUR
// grammar on the tracer's WPP field.
func (p *Pipeline) Trace(seed uint64, wpp bool, out io.Writer) (*trace.Tracer, *interp.Machine, error) {
	m := interp.New(p.Prog, seed)
	if out != nil {
		m.Out = out
	}
	tr := trace.NewTracer(p.Info, m)
	if wpp {
		tr.EnableWPP()
	}
	if err := m.Run(); err != nil {
		return nil, nil, err
	}
	if tr.Err != nil {
		return nil, nil, tr.Err
	}
	return tr, m, nil
}
