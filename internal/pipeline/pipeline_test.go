package pipeline_test

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"pathprof/internal/instrument"
	"pathprof/internal/interp"
	"pathprof/internal/pipeline"
	"pathprof/internal/profile"
	"pathprof/internal/workload"
)

// serialize renders counters in the stable on-disk form.
func serialize(t *testing.T, c *profile.Counters) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := c.Serialize(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestCachedPlanMatchesFreshPlan is the cross-validation the refactor
// hinges on: a run through the pipeline's cached plan (and flat store)
// must produce byte-identical serialized counters to a run that builds
// everything fresh (instrument.New on a fresh Analyze, nested store).
func TestCachedPlanMatchesFreshPlan(t *testing.T) {
	for _, name := range []string{"181.mcf", "300.twolf", "130.li"} {
		b := workload.ByName(name)
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		p, err := pipeline.New(prog, pipeline.Options{Store: profile.StoreFlat})
		if err != nil {
			t.Fatal(err)
		}
		k := p.Info.MaxDegree() / 2
		cfg := instrument.Config{K: k, Loops: true, Interproc: true}

		// Two pipeline runs: the second hits the plan cache.
		run1, err := p.Execute(cfg, b.Seed, nil)
		if err != nil {
			t.Fatalf("%s: first pipeline run: %v", name, err)
		}
		run2, err := p.Execute(cfg, b.Seed, nil)
		if err != nil {
			t.Fatalf("%s: cached pipeline run: %v", name, err)
		}
		if p.CachedPlans() != 1 {
			t.Fatalf("%s: want 1 cached plan, have %d", name, p.CachedPlans())
		}

		// A fresh-plan run sharing nothing with the pipeline.
		freshInfo, err := profile.Analyze(prog, profile.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		m := interp.New(prog, b.Seed)
		rt, err := instrument.New(freshInfo, cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if rt.Err != nil {
			t.Fatal(rt.Err)
		}

		want := serialize(t, rt.Counters())
		if got := serialize(t, run1.Counters); !bytes.Equal(got, want) {
			t.Fatalf("%s k=%d: pipeline run diverges from fresh-plan run", name, k)
		}
		if got := serialize(t, run2.Counters); !bytes.Equal(got, want) {
			t.Fatalf("%s k=%d: cached-plan run diverges from fresh-plan run", name, k)
		}
	}
}

// TestPlanCacheSingleflight: concurrent Plan calls for one configuration
// must all receive the same plan instance, built once.
func TestPlanCacheSingleflight(t *testing.T) {
	b := workload.ByName("181.mcf")
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := instrument.Config{K: 1, Loops: true, Interproc: true}
	const callers = 16
	plans := make([]*instrument.Plan, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pl, err := p.Plan(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = pl
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("caller %d received a different plan instance", i)
		}
	}
	if p.CachedPlans() != 1 {
		t.Fatalf("want 1 cached plan, have %d", p.CachedPlans())
	}
}

// TestParallelSweepDeterminism: every degree profiled concurrently through
// one pipeline must match its sequentially profiled twin.
func TestParallelSweepDeterminism(t *testing.T) {
	b := workload.ByName("181.mcf")
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(prog, pipeline.Options{Store: profile.StoreFlat})
	if err != nil {
		t.Fatal(err)
	}
	maxK := p.Info.MaxDegree()
	seq := make([][]byte, maxK+1)
	for k := 0; k <= maxK; k++ {
		run, err := p.Execute(instrument.Config{K: k, Loops: true, Interproc: true}, b.Seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		seq[k] = serialize(t, run.Counters)
	}
	pool := pipeline.NewPool(4)
	var wg sync.WaitGroup
	for k := 0; k <= maxK; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			pool.Do(func() {
				run, err := p.Execute(instrument.Config{K: k, Loops: true, Interproc: true}, b.Seed, nil)
				if err != nil {
					t.Errorf("k=%d: %v", k, err)
					return
				}
				if !bytes.Equal(serialize(t, run.Counters), seq[k]) {
					t.Errorf("k=%d: parallel run diverges from sequential run", k)
				}
			})
		}(k)
	}
	wg.Wait()
}

// TestPoolBoundsConcurrency: a pool of n slots must never run more than n
// tasks at once.
func TestPoolBoundsConcurrency(t *testing.T) {
	const bound = 3
	pool := pipeline.NewPool(bound)
	if pool.Size() != bound {
		t.Fatalf("pool size %d, want %d", pool.Size(), bound)
	}
	var active, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.Do(func() {
				n := active.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				for j := 0; j < 1000; j++ { // linger so overlap is observable
					_ = j
				}
				active.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > bound {
		t.Fatalf("observed %d concurrent tasks, bound is %d", got, bound)
	}
}
