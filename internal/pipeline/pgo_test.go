package pipeline_test

import (
	"bytes"
	"sync"
	"testing"

	"pathprof/internal/instrument"
	"pathprof/internal/pgo"
	"pathprof/internal/pipeline"
	"pathprof/internal/workload"
)

// TestPGOEngineMatchesReg: the PGO engine — self-training and with an
// explicit profile — must produce byte-identical counters to the register
// engine on the same (cfg, seed) cell; layout moves code, never results.
func TestPGOEngineMatchesReg(t *testing.T) {
	for _, name := range []string{"300.twolf", "130.li"} {
		b := workload.ByName(name)
		prog, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		p, err := pipeline.New(prog, pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := instrument.Config{K: 1, Loops: true, Interproc: true}
		ref, err := p.Execute(cfg, b.Seed, nil)
		if err != nil {
			t.Fatalf("%s: regvm run: %v", name, err)
		}
		want := serialize(t, ref.Counters)

		// Self-training PGO (no Options.PGO): the layout trains on a
		// register run at the same seed.
		got, err := p.ExecuteStore(pipeline.EnginePGO, cfg, b.Seed, nil, p.NewStore(cfg.EffIters()), 0)
		if err != nil {
			t.Fatalf("%s: self-trained pgo run: %v", name, err)
		}
		if !bytes.Equal(serialize(t, got.Counters), want) {
			t.Fatalf("%s: self-trained pgo counters diverge from regvm", name)
		}

		// Explicit-profile PGO: feed the reference run's own counters
		// back in as Options.PGO.
		p2, err := pipeline.New(prog, pipeline.Options{
			Engine: pipeline.EnginePGO,
			PGO:    &pgo.Profile{K: ref.K, Iters: ref.Iters, Counters: ref.Counters},
		})
		if err != nil {
			t.Fatal(err)
		}
		got2, err := p2.Execute(cfg, b.Seed, nil)
		if err != nil {
			t.Fatalf("%s: explicit-profile pgo run: %v", name, err)
		}
		if !bytes.Equal(serialize(t, got2.Counters), want) {
			t.Fatalf("%s: explicit-profile pgo counters diverge from regvm", name)
		}
		plan, err := p2.PGOPlan(cfg, b.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Reordered() == 0 {
			t.Fatalf("%s: explicit-profile plan reordered no functions", name)
		}
		if _, err := p2.PGOCode(cfg, b.Seed); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPGOCodeSingleflight: concurrent PGO runs of one (cfg, seed) cell
// must share a single trained code object — the self-training run and the
// layout compile happen once, and every caller's counters still match the
// register engine's.
func TestPGOCodeSingleflight(t *testing.T) {
	b := workload.ByName("181.mcf")
	prog, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := instrument.Config{K: 1, Loops: true, Interproc: true}
	ref, err := p.Execute(cfg, b.Seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := serialize(t, ref.Counters)

	const callers = 8
	codes := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run, err := p.ExecuteStore(pipeline.EnginePGO, cfg, b.Seed, nil, p.NewStore(cfg.EffIters()), 0)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(serialize(t, run.Counters), want) {
				t.Errorf("caller %d: pgo counters diverge from regvm", i)
			}
			code, err := p.PGOCode(cfg, b.Seed)
			if err != nil {
				t.Error(err)
				return
			}
			codes[i] = code
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if codes[i] != codes[0] {
			t.Fatalf("caller %d received a different compiled code instance", i)
		}
	}
}
