package pipeline

import (
	"context"
	"runtime"
	"sync"
	"time"

	"pathprof/internal/obs"
)

// Pool bounds the number of heavy pipeline stages (instrumented runs,
// trace runs, compile+analyze preludes) executing at once. One pool is
// shared across every concurrent sweep — the per-benchmark fan-out of
// CollectAll and the per-degree fan-out inside each Collect draw from the
// same slot budget, so total parallelism never exceeds the bound no matter
// how the fan-outs nest.
//
// The discipline that keeps nesting deadlock-free: only leaf work holds a
// slot. Coordinator goroutines (the ones that spawn sub-tasks and wait)
// must wait outside any Do call.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool bounding concurrency to n (n <= 0 means
// GOMAXPROCS, the default).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Size returns the pool's concurrency bound.
func (p *Pool) Size() int { return cap(p.sem) }

// Do runs fn while holding one of the pool's slots, blocking until one
// frees up.
func (p *Pool) Do(fn func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	fn()
}

// DoCtx is Do with a cancellable wait: when ctx is done before a slot frees
// up, fn never starts and the context's error is returned. Once fn starts
// it runs to completion — cancellation bounds queueing delay (the quantity
// a server's per-job timeout needs to control), not execution, which the
// engines bound with their own step limits.
func (p *Pool) DoCtx(ctx context.Context, fn func()) error {
	var start time.Time
	if obs.DebugEnabled() {
		start = time.Now()
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	if !start.IsZero() {
		obs.Logger().Debug("pool.wait",
			"wait_ms", time.Since(start).Milliseconds(), "slots", cap(p.sem))
	}
	defer func() { <-p.sem }()
	fn()
	return nil
}

var (
	sharedMu sync.Mutex
	shared   *Pool
)

// Shared returns the process-wide pool (GOMAXPROCS slots unless
// SetParallelism changed it).
func Shared() *Pool {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if shared == nil {
		shared = NewPool(0)
	}
	return shared
}

// SetParallelism replaces the shared pool with one bounded to n (n <= 0
// restores GOMAXPROCS). Call it before starting work — sweeps already
// holding the old pool keep its bound.
func SetParallelism(n int) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	shared = NewPool(n)
}
