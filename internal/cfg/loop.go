package cfg

import (
	"fmt"
	"sort"
)

// Loop describes one natural loop: a header, the backedges targeting it, and
// the set of body nodes.
type Loop struct {
	// Head is the loop header.
	Head NodeID
	// Backedges are all edges t->Head where Head dominates t. A loop with
	// several backedges (e.g. from `continue`) has them merged into one
	// Loop record, matching the natural-loop definition.
	Backedges []Edge
	// Body is the set of nodes in the loop, including Head and all
	// backedge sources, sorted by id.
	Body []NodeID

	// Parent is the innermost enclosing loop, or nil for top-level loops.
	Parent *Loop
	// Children are loops immediately nested inside this one.
	Children []*Loop

	inBody map[NodeID]bool
}

// Contains reports whether v is in the loop body.
func (l *Loop) Contains(v NodeID) bool { return l.inBody[v] }

// ExitEdges returns the edges leaving the loop body, in deterministic order.
func (l *Loop) ExitEdges(g *Graph) []Edge {
	var out []Edge
	for _, v := range l.Body {
		for _, s := range g.Succs(v) {
			if !l.inBody[s] {
				out = append(out, Edge{v, s})
			}
		}
	}
	return out
}

// EntryEdges returns the edges entering the header from outside the loop.
func (l *Loop) EntryEdges(g *Graph) []Edge {
	var out []Edge
	for _, p := range g.Preds(l.Head) {
		if !l.inBody[p] {
			out = append(out, Edge{p, l.Head})
		}
	}
	return out
}

// IsBackedge reports whether e is one of this loop's backedges.
func (l *Loop) IsBackedge(e Edge) bool {
	for _, b := range l.Backedges {
		if b == e {
			return true
		}
	}
	return false
}

func (l *Loop) String() string {
	return fmt.Sprintf("loop(head=%d, backedges=%v, body=%v)", l.Head, l.Backedges, l.Body)
}

// LoopForest is the set of natural loops of a graph with their nesting
// structure.
type LoopForest struct {
	// Loops holds every loop, ordered by header id.
	Loops []*Loop
	// byHead maps header -> loop.
	byHead map[NodeID]*Loop
	// innermost maps node -> innermost loop containing it (nil if none).
	innermost map[NodeID]*Loop
}

// ByHead returns the loop with the given header, or nil.
func (f *LoopForest) ByHead(h NodeID) *Loop { return f.byHead[h] }

// Innermost returns the innermost loop containing v, or nil.
func (f *LoopForest) Innermost(v NodeID) *Loop { return f.innermost[v] }

// ErrIrreducible is returned by FindLoops when the graph has a retreating
// edge whose target does not dominate its source — i.e. the graph is not
// reducible. Ball-Larus numbering (and therefore everything in this
// repository) requires reducible control flow, as did the paper's Trimaran
// substrate.
type ErrIrreducible struct{ Edge Edge }

func (e *ErrIrreducible) Error() string {
	return fmt.Sprintf("cfg: irreducible control flow: retreating edge %v whose target does not dominate its source", e.Edge)
}

// FindLoops identifies all natural loops of g and their nesting. It returns
// an *ErrIrreducible error if any retreating edge is not a true backedge.
func FindLoops(g *Graph) (*LoopForest, error) {
	dom := ComputeDominators(g)
	f := &LoopForest{byHead: make(map[NodeID]*Loop), innermost: make(map[NodeID]*Loop)}

	for _, e := range RetreatingEdges(g) {
		if !dom.Dominates(e.To, e.From) {
			return nil, &ErrIrreducible{Edge: e}
		}
		l := f.byHead[e.To]
		if l == nil {
			l = &Loop{Head: e.To, inBody: map[NodeID]bool{e.To: true}}
			f.byHead[e.To] = l
			f.Loops = append(f.Loops, l)
		}
		l.Backedges = append(l.Backedges, e)
		collectLoopBody(g, l, e.From)
	}

	sort.Slice(f.Loops, func(i, j int) bool { return f.Loops[i].Head < f.Loops[j].Head })
	for _, l := range f.Loops {
		l.Body = l.Body[:0]
		for v := range l.inBody {
			l.Body = append(l.Body, v)
		}
		sort.Slice(l.Body, func(i, j int) bool { return l.Body[i] < l.Body[j] })
	}

	f.buildNesting()
	return f, nil
}

// collectLoopBody adds to l every node that can reach the backedge source
// tail without passing through the header (the standard natural-loop body
// computation: walk predecessors from tail until the header).
func collectLoopBody(g *Graph, l *Loop, tail NodeID) {
	if l.inBody[tail] {
		return
	}
	l.inBody[tail] = true
	stack := []NodeID{tail}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Preds(v) {
			if !l.inBody[p] {
				l.inBody[p] = true
				stack = append(stack, p)
			}
		}
	}
}

// buildNesting links Parent/Children pointers and fills the innermost map.
// Loop A is nested in loop B iff A's header is in B's body and A != B; the
// parent is the smallest strictly-containing loop.
func (f *LoopForest) buildNesting() {
	for _, a := range f.Loops {
		var best *Loop
		for _, b := range f.Loops {
			if a == b || b.Head == a.Head || !b.inBody[a.Head] {
				continue
			}
			if best == nil || len(b.inBody) < len(best.inBody) {
				best = b
			}
		}
		a.Parent = best
		if best != nil {
			best.Children = append(best.Children, a)
		}
	}

	// innermost: for each node pick the smallest loop containing it.
	for _, l := range f.Loops {
		for v := range l.inBody {
			cur := f.innermost[v]
			if cur == nil || len(l.inBody) < len(cur.inBody) {
				f.innermost[v] = l
			}
		}
	}
}
