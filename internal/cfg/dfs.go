package cfg

// DFSResult carries the orderings produced by a depth-first traversal from
// the entry node.
type DFSResult struct {
	// Preorder holds node ids in the order they were first visited.
	Preorder []NodeID
	// Postorder holds node ids in the order their visit finished.
	Postorder []NodeID
	// PreNum[v] is v's index in Preorder, -1 if unreachable.
	PreNum []int
	// PostNum[v] is v's index in Postorder, -1 if unreachable.
	PostNum []int
	// Parent[v] is the DFS tree parent of v (None for the root and
	// unreachable nodes).
	Parent []NodeID
}

// DFS performs an iterative depth-first traversal from the entry node,
// following successor lists in order. Successor order is significant: it is
// the order that fixes Ball-Larus path ids downstream.
func DFS(g *Graph) *DFSResult {
	n := g.Len()
	r := &DFSResult{
		PreNum:  make([]int, n),
		PostNum: make([]int, n),
		Parent:  make([]NodeID, n),
	}
	for i := range r.PreNum {
		r.PreNum[i] = -1
		r.PostNum[i] = -1
		r.Parent[i] = None
	}
	if g.Entry() == None {
		return r
	}

	// Explicit stack of (node, next-successor-index) frames so the
	// traversal handles deep graphs without growing the Go stack.
	type frame struct {
		node NodeID
		next int
	}
	stack := []frame{{g.Entry(), 0}}
	r.PreNum[g.Entry()] = 0
	r.Preorder = append(r.Preorder, g.Entry())

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.Succs(f.node)
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if r.PreNum[s] == -1 {
				r.PreNum[s] = len(r.Preorder)
				r.Preorder = append(r.Preorder, s)
				r.Parent[s] = f.node
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		r.PostNum[f.node] = len(r.Postorder)
		r.Postorder = append(r.Postorder, f.node)
		stack = stack[:len(stack)-1]
	}
	return r
}

// ReversePostorder returns the nodes reachable from entry in reverse
// postorder — a topological order for acyclic graphs and the canonical
// iteration order for forward dataflow problems.
func ReversePostorder(g *Graph) []NodeID {
	post := DFS(g).Postorder
	out := make([]NodeID, len(post))
	for i, v := range post {
		out[len(post)-1-i] = v
	}
	return out
}

// RetreatingEdges returns the DFS retreating edges (u,v) where v is an
// ancestor of u in the DFS tree or, more precisely for this implementation,
// where PostNum[u] <= PostNum[v] (the standard back/retreating test). For
// reducible graphs these are exactly the backedges of natural loops.
func RetreatingEdges(g *Graph) []Edge {
	d := DFS(g)
	var out []Edge
	for _, e := range g.Edges() {
		if d.PreNum[e.From] == -1 || d.PreNum[e.To] == -1 {
			continue
		}
		if d.PostNum[e.From] <= d.PostNum[e.To] {
			out = append(out, e)
		}
	}
	return out
}

// IsAcyclic reports whether the subgraph reachable from the entry contains no
// cycles.
func IsAcyclic(g *Graph) bool { return len(RetreatingEdges(g)) == 0 }

// CountPaths returns the number of distinct entry→exit paths in an acyclic
// graph by dynamic programming over reverse postorder. The second result is
// false if the graph has a cycle (in which case the count is meaningless).
//
// The count saturates at MaxPathCount to avoid overflow on adversarial
// graphs; profiling callers reject functions whose path count exceeds their
// own (much smaller) budgets long before saturation matters.
func CountPaths(g *Graph) (int64, bool) {
	if !IsAcyclic(g) {
		return 0, false
	}
	counts := make([]int64, g.Len())
	rpo := ReversePostorder(g)
	// Walk in postorder so successors are computed first.
	for i := len(rpo) - 1; i >= 0; i-- {
		v := rpo[i]
		if v == g.Exit() {
			counts[v] = 1
			continue
		}
		var sum int64
		for _, s := range g.Succs(v) {
			sum += counts[s]
			if sum >= MaxPathCount {
				sum = MaxPathCount
			}
		}
		counts[v] = sum
	}
	return counts[g.Entry()], true
}

// MaxPathCount is the saturation limit for CountPaths.
const MaxPathCount int64 = 1 << 60
