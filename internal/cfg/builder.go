package cfg

import (
	"fmt"
	"strings"
)

// Build constructs a graph from a compact textual description, used
// pervasively in tests and fixtures. The spec is a semicolon- or
// newline-separated list of adjacency clauses:
//
//	En -> P1
//	P1 -> B1 P2
//	...
//
// Node names are created on first mention, in order of appearance; successor
// order within a clause is preserved (it determines Ball-Larus ids). The
// first-mentioned node is the entry and the node named "Ex" — or, failing
// that, the unique node with no successors — is the exit.
func Build(name, spec string) (*Graph, error) {
	g := New(name)
	ids := map[string]NodeID{}
	node := func(label string) NodeID {
		if id, ok := ids[label]; ok {
			return id
		}
		id := g.AddNode(label)
		ids[label] = id
		return id
	}

	clauses := strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == '\n' })
	first := ""
	for _, clause := range clauses {
		clause = strings.TrimSpace(clause)
		if clause == "" || strings.HasPrefix(clause, "#") {
			continue
		}
		parts := strings.SplitN(clause, "->", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("cfg: bad clause %q (want \"a -> b c\")", clause)
		}
		from := strings.TrimSpace(parts[0])
		if from == "" {
			return nil, fmt.Errorf("cfg: empty source in clause %q", clause)
		}
		if first == "" {
			first = from
		}
		f := node(from)
		for _, to := range strings.Fields(parts[1]) {
			if err := g.AddEdge(f, node(to)); err != nil {
				return nil, err
			}
		}
	}
	if first == "" {
		return nil, fmt.Errorf("cfg: empty spec")
	}
	g.SetEntry(ids[first])

	if ex, ok := ids["Ex"]; ok {
		g.SetExit(ex)
	} else {
		exit := None
		for i := 0; i < g.Len(); i++ {
			if len(g.Succs(NodeID(i))) == 0 {
				if exit != None {
					return nil, fmt.Errorf("cfg: multiple sink nodes (%s, %s); name the exit \"Ex\"", g.Label(exit), g.Label(NodeID(i)))
				}
				exit = NodeID(i)
			}
		}
		if exit == None {
			return nil, fmt.Errorf("cfg: no sink node; name the exit \"Ex\"")
		}
		g.SetExit(exit)
	}
	return g, nil
}

// MustBuild is Build for statically-known-good specs; it panics on error.
func MustBuild(name, spec string) *Graph {
	g, err := Build(name, spec)
	if err != nil {
		panic(err)
	}
	return g
}
