package cfg

import (
	"fmt"
	"strings"
)

// DotOptions controls DOT rendering.
type DotOptions struct {
	// Highlight marks a set of edges to draw dashed (e.g. PI edges of an
	// overlapping graph).
	Highlight map[Edge]bool
	// EdgeLabels attaches labels (e.g. Ball-Larus increments) to edges.
	EdgeLabels map[Edge]string
	// Shade marks nodes to fill (e.g. overlapping-graph clones).
	Shade map[NodeID]bool
}

// Dot renders the graph in Graphviz DOT syntax. It is used by the CLIs for
// debugging and documentation; nothing in the pipeline parses it back.
func Dot(g *Graph, opt *DotOptions) string {
	if opt == nil {
		opt = &DotOptions{}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for i := 0; i < g.Len(); i++ {
		id := NodeID(i)
		attrs := []string{fmt.Sprintf("label=%q", g.Label(id))}
		switch id {
		case g.Entry():
			attrs = append(attrs, "shape=oval")
		case g.Exit():
			attrs = append(attrs, "shape=oval", "peripheries=2")
		}
		if opt.Shade[id] {
			attrs = append(attrs, "style=filled", "fillcolor=lightgray")
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", id, strings.Join(attrs, ", "))
	}
	for _, e := range g.Edges() {
		var attrs []string
		if opt.Highlight[e] {
			attrs = append(attrs, "style=dashed")
		}
		if l, ok := opt.EdgeLabels[e]; ok {
			attrs = append(attrs, fmt.Sprintf("label=%q", l))
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
