package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominatorsLinear(t *testing.T) {
	g := MustBuild("t", "a -> b; b -> c; c -> Ex")
	d := ComputeDominators(g)
	byLabel := func(l string) NodeID {
		for i := 0; i < g.Len(); i++ {
			if g.Label(NodeID(i)) == l {
				return NodeID(i)
			}
		}
		t.Fatalf("no node %s", l)
		return None
	}
	if d.Idom(byLabel("b")) != byLabel("a") {
		t.Fatal("idom(b) != a")
	}
	if d.Idom(byLabel("Ex")) != byLabel("c") {
		t.Fatal("idom(Ex) != c")
	}
	if !d.Dominates(byLabel("a"), byLabel("Ex")) {
		t.Fatal("a should dominate Ex")
	}
	if d.Dominates(byLabel("b"), byLabel("a")) {
		t.Fatal("b should not dominate a")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g := DiamondCFG()
	d := ComputeDominators(g)
	// In a diamond En->P->{A,B}->Ex: idom(Ex) is P, not A or B.
	var p, ex NodeID
	for i := 0; i < g.Len(); i++ {
		switch g.Label(NodeID(i)) {
		case "P":
			p = NodeID(i)
		case "Ex":
			ex = NodeID(i)
		}
	}
	if d.Idom(ex) != p {
		t.Fatalf("idom(Ex) = %s; want P", g.Label(d.Idom(ex)))
	}
}

func TestDominatesIsReflexive(t *testing.T) {
	g := PaperLoopCFG()
	d := ComputeDominators(g)
	for i := 0; i < g.Len(); i++ {
		if !d.Dominates(NodeID(i), NodeID(i)) {
			t.Fatalf("node %s does not dominate itself", g.Label(NodeID(i)))
		}
	}
}

func TestDominatorsLoopHeader(t *testing.T) {
	g := PaperLoopCFG()
	d := ComputeDominators(g)
	var p1, p3 NodeID
	for i := 0; i < g.Len(); i++ {
		switch g.Label(NodeID(i)) {
		case "P1":
			p1 = NodeID(i)
		case "P3":
			p3 = NodeID(i)
		}
	}
	if !d.Dominates(p1, p3) {
		t.Fatal("loop header P1 must dominate backedge source P3")
	}
}

// randomCFG builds a random (possibly cyclic) graph guaranteed to be fully
// reachable from node 0.
func randomCFG(r *rand.Rand, n int) *Graph {
	g := New("rand")
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	for v := 1; v < n; v++ {
		g.MustEdge(NodeID(r.Intn(v)), NodeID(v))
	}
	// Random extra edges in any direction (but never into the entry, and
	// no self loops, which our profiling layers reject anyway).
	for k := 0; k < n; k++ {
		a, b := NodeID(r.Intn(n)), NodeID(1+r.Intn(n-1))
		if a != b && !g.HasEdge(a, b) {
			g.MustEdge(a, b)
		}
	}
	g.SetEntry(0)
	g.SetExit(NodeID(n - 1)) // exit may have succs; dominator code doesn't care
	return g
}

func TestDominatorsMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomCFG(r, 3+r.Intn(12))
		fast := ComputeDominators(g)
		naive := NaiveDominators(g)
		for a := 0; a < g.Len(); a++ {
			for b := 0; b < g.Len(); b++ {
				want := naive[b][a] // a dominates b
				got := fast.Dominates(NodeID(a), NodeID(b))
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
