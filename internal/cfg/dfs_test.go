package cfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func labelsOf(g *Graph, ids []NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Label(id)
	}
	return out
}

func TestDFSOrderings(t *testing.T) {
	g := MustBuild("t", "a -> b c; b -> d; c -> d; d -> Ex")
	d := DFS(g)
	got := labelsOf(g, d.Preorder)
	want := []string{"a", "b", "d", "Ex", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("preorder = %v; want %v", got, want)
		}
	}
	// Postorder finishes Ex before d, d before b, c after b's subtree.
	post := labelsOf(g, d.Postorder)
	wantPost := []string{"Ex", "d", "b", "c", "a"}
	for i := range wantPost {
		if post[i] != wantPost[i] {
			t.Fatalf("postorder = %v; want %v", post, wantPost)
		}
	}
	if d.Parent[g.Entry()] != None {
		t.Fatal("entry has a DFS parent")
	}
}

func TestDFSUnreachableNodes(t *testing.T) {
	g := New("t")
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddNode("island")
	g.MustEdge(a, b)
	g.SetEntry(a)
	g.SetExit(b)
	d := DFS(g)
	if d.PreNum[2] != -1 || d.PostNum[2] != -1 {
		t.Fatal("island node was numbered")
	}
	if len(d.Preorder) != 2 {
		t.Fatalf("preorder = %v; want 2 nodes", d.Preorder)
	}
}

func TestReversePostorderIsTopological(t *testing.T) {
	g := MustBuild("t", "a -> b c; b -> d; c -> d; d -> e; e -> Ex")
	rpo := ReversePostorder(g)
	pos := map[NodeID]int{}
	for i, v := range rpo {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("rpo not topological: edge %v but pos %d >= %d", e, pos[e.From], pos[e.To])
		}
	}
}

func TestRetreatingEdges(t *testing.T) {
	g := PaperLoopCFG()
	back := RetreatingEdges(g)
	if len(back) != 1 {
		t.Fatalf("retreating edges = %v; want exactly one", back)
	}
	e := back[0]
	if g.Label(e.From) != "P3" || g.Label(e.To) != "P1" {
		t.Fatalf("backedge = %s->%s; want P3->P1", g.Label(e.From), g.Label(e.To))
	}
	if IsAcyclic(g) {
		t.Fatal("paper loop reported acyclic")
	}
	if !IsAcyclic(DiamondCFG()) {
		t.Fatal("diamond reported cyclic")
	}
}

func TestCountPathsDiamond(t *testing.T) {
	n, ok := CountPaths(DiamondCFG())
	if !ok || n != 2 {
		t.Fatalf("CountPaths(diamond) = %d,%v; want 2,true", n, ok)
	}
}

func TestCountPathsCyclicRejected(t *testing.T) {
	if _, ok := CountPaths(PaperLoopCFG()); ok {
		t.Fatal("CountPaths accepted a cyclic graph")
	}
}

// randomDAG builds a random acyclic graph with a single entry (node 0) and a
// single exit (node n-1): edges only go from lower to higher ids, every node
// gets at least one incoming and one outgoing edge.
func randomDAG(r *rand.Rand, n int) *Graph {
	g := New("rand")
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	for v := 1; v < n; v++ {
		p := NodeID(r.Intn(v))
		g.MustEdge(p, NodeID(v)) // guarantees reachability from 0
	}
	for v := 0; v < n-1; v++ {
		if len(g.Succs(NodeID(v))) == 0 {
			// Guarantee exit-reachability.
			to := NodeID(v + 1 + r.Intn(n-v-1))
			if !g.HasEdge(NodeID(v), to) {
				g.MustEdge(NodeID(v), to)
			}
		}
		// Sprinkle extra forward edges.
		for k := 0; k < 2; k++ {
			to := NodeID(v + 1 + r.Intn(n-v-1))
			if !g.HasEdge(NodeID(v), to) {
				g.MustEdge(NodeID(v), to)
			}
		}
	}
	g.SetEntry(0)
	g.SetExit(NodeID(n - 1))
	return g
}

// exhaustivePathCount counts entry→exit paths by explicit enumeration.
func exhaustivePathCount(g *Graph, from NodeID) int64 {
	if from == g.Exit() {
		return 1
	}
	var n int64
	for _, s := range g.Succs(from) {
		n += exhaustivePathCount(g, s)
	}
	return n
}

func TestCountPathsMatchesExhaustiveEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 4+r.Intn(10))
		want := exhaustivePathCount(g, g.Entry())
		got, ok := CountPaths(g)
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountPathsSaturates(t *testing.T) {
	// A ladder of k diamonds has 2^k paths; build k=70 to exceed 2^60.
	g := New("big")
	prev := g.AddNode("en")
	g.SetEntry(prev)
	for i := 0; i < 70; i++ {
		p := g.AddNode("")
		a := g.AddNode("")
		b := g.AddNode("")
		j := g.AddNode("")
		g.MustEdge(prev, p)
		g.MustEdge(p, a)
		g.MustEdge(p, b)
		g.MustEdge(a, j)
		g.MustEdge(b, j)
		prev = j
	}
	ex := g.AddNode("Ex")
	g.MustEdge(prev, ex)
	g.SetExit(ex)
	n, ok := CountPaths(g)
	if !ok {
		t.Fatal("not acyclic?")
	}
	if n != MaxPathCount {
		t.Fatalf("count = %d; want saturation at %d", n, MaxPathCount)
	}
}
