package cfg

// Dominators computes the immediate-dominator tree of the nodes reachable
// from the entry, using the Cooper-Harvey-Kennedy iterative algorithm ("A
// Simple, Fast Dominance Algorithm"). It is O(n^2) in the worst case but
// effectively linear on real control flow graphs, and far easier to audit
// than Lengauer-Tarjan; the test suite cross-checks it against a naive
// definition-based computation on random graphs.
type Dominators struct {
	// idom[v] is the immediate dominator of v; the entry's idom is itself,
	// unreachable nodes have None.
	idom []NodeID
	// postNum caches DFS postorder numbers for the Dominates walk.
	g *Graph
}

// ComputeDominators returns the dominator tree of g.
func ComputeDominators(g *Graph) *Dominators {
	n := g.Len()
	d := &Dominators{idom: make([]NodeID, n), g: g}
	for i := range d.idom {
		d.idom[i] = None
	}
	if g.Entry() == None {
		return d
	}

	rpo := ReversePostorder(g)
	// rpoNum[v] = position of v in rpo; -1 for unreachable.
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, v := range rpo {
		rpoNum[v] = i
	}

	intersect := func(a, b NodeID) NodeID {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = d.idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = d.idom[b]
			}
		}
		return a
	}

	d.idom[g.Entry()] = g.Entry()
	changed := true
	for changed {
		changed = false
		for _, v := range rpo {
			if v == g.Entry() {
				continue
			}
			var newIdom NodeID = None
			for _, p := range g.Preds(v) {
				if rpoNum[p] == -1 || d.idom[p] == None {
					continue // unreachable or not yet processed
				}
				if newIdom == None {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != None && d.idom[v] != newIdom {
				d.idom[v] = newIdom
				changed = true
			}
		}
	}
	return d
}

// Idom returns the immediate dominator of v (None for unreachable nodes; the
// entry returns itself).
func (d *Dominators) Idom(v NodeID) NodeID { return d.idom[v] }

// Dominates reports whether a dominates b (reflexively: every node dominates
// itself). Unreachable nodes dominate nothing and are dominated by nothing.
func (d *Dominators) Dominates(a, b NodeID) bool {
	if d.idom[b] == None || d.idom[a] == None {
		return false
	}
	for {
		if b == a {
			return true
		}
		next := d.idom[b]
		if next == b { // reached entry
			return false
		}
		b = next
	}
}

// NaiveDominators computes, for each node v, the full set of dominators of v
// directly from the definition (iterative dataflow over all-nodes sets). It
// is quadratic-ish and exists to cross-check ComputeDominators in tests.
func NaiveDominators(g *Graph) [][]bool {
	n := g.Len()
	dom := make([][]bool, n)
	reach := g.reachableFrom(g.Entry(), false)
	for v := 0; v < n; v++ {
		dom[v] = make([]bool, n)
		if !reach[v] {
			continue
		}
		if NodeID(v) == g.Entry() {
			dom[v][v] = true
			continue
		}
		for u := 0; u < n; u++ {
			dom[v][u] = reach[u]
		}
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < n; v++ {
			if !reach[v] || NodeID(v) == g.Entry() {
				continue
			}
			// dom[v] = {v} ∪ ∩ dom[p] over reachable preds p.
			newSet := make([]bool, n)
			first := true
			for _, p := range g.Preds(NodeID(v)) {
				if !reach[p] {
					continue
				}
				if first {
					copy(newSet, dom[p])
					first = false
					continue
				}
				for u := range newSet {
					newSet[u] = newSet[u] && dom[p][u]
				}
			}
			newSet[v] = true
			for u := range newSet {
				if newSet[u] != dom[v][u] {
					dom[v] = newSet
					changed = true
					break
				}
			}
		}
	}
	return dom
}
