// Package cfg provides the control-flow-graph substrate used by every other
// package in this repository: graph construction, depth-first orderings,
// dominators, natural-loop detection, and reducibility checks.
//
// A Graph is a rooted directed graph of basic blocks identified by dense
// integer NodeIDs. Exactly one node is the entry and exactly one node is the
// exit; profiling algorithms (Ball-Larus numbering, overlapping-path
// enumeration) require every node to be reachable from the entry and to reach
// the exit.
package cfg

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a single Graph. IDs are dense: a graph with
// n nodes uses IDs 0..n-1.
type NodeID int

// None is the sentinel for "no node".
const None NodeID = -1

// Edge is a directed edge between two nodes of a Graph.
type Edge struct {
	From, To NodeID
}

func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// Node is a basic block in a control flow graph.
type Node struct {
	ID    NodeID
	Label string // human-readable name, e.g. "P1" or "B3"

	// Succs and Preds are kept in insertion order; successor order is
	// semantically meaningful (it fixes the depth-first path numbering
	// used by Ball-Larus ids).
	Succs []NodeID
	Preds []NodeID
}

// IsPredicate reports whether the node ends in a conditional branch, i.e. has
// two or more successors. Per the paper, region-terminating blocks are also
// treated as predicates by the overlapping-path machinery, but that special
// case is handled by the callers, not here.
func (n *Node) IsPredicate() bool { return len(n.Succs) >= 2 }

// Graph is a single-procedure control flow graph.
type Graph struct {
	Name  string
	nodes []*Node
	entry NodeID
	exit  NodeID
}

// New returns an empty graph with the given name. Entry and exit must be set
// with SetEntry/SetExit before validation.
func New(name string) *Graph {
	return &Graph{Name: name, entry: None, exit: None}
}

// AddNode appends a new node with the given label and returns its id.
func (g *Graph) AddNode(label string) NodeID {
	id := NodeID(len(g.nodes))
	if label == "" {
		label = fmt.Sprintf("n%d", id)
	}
	g.nodes = append(g.nodes, &Node{ID: id, Label: label})
	return id
}

// AddEdge inserts the edge from -> to. Duplicate edges are rejected: the
// profiling algorithms identify edges by their endpoints, so parallel edges
// would be ambiguous. (Callers model "both branch arms jump to the same
// block" by inserting a forwarding block.)
func (g *Graph) AddEdge(from, to NodeID) error {
	if !g.valid(from) || !g.valid(to) {
		return fmt.Errorf("cfg: AddEdge(%d,%d): node out of range [0,%d)", from, to, len(g.nodes))
	}
	for _, s := range g.nodes[from].Succs {
		if s == to {
			return fmt.Errorf("cfg: duplicate edge %d->%d", from, to)
		}
	}
	g.nodes[from].Succs = append(g.nodes[from].Succs, to)
	g.nodes[to].Preds = append(g.nodes[to].Preds, from)
	return nil
}

// MustEdge is AddEdge for statically-known-good construction code.
func (g *Graph) MustEdge(from, to NodeID) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge from -> to if present and reports whether it
// was removed.
func (g *Graph) RemoveEdge(from, to NodeID) bool {
	if !g.valid(from) || !g.valid(to) {
		return false
	}
	removed := false
	fn := g.nodes[from]
	for i, s := range fn.Succs {
		if s == to {
			fn.Succs = append(fn.Succs[:i], fn.Succs[i+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		return false
	}
	tn := g.nodes[to]
	for i, p := range tn.Preds {
		if p == from {
			tn.Preds = append(tn.Preds[:i], tn.Preds[i+1:]...)
			break
		}
	}
	return true
}

// HasEdge reports whether the edge from -> to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	if !g.valid(from) {
		return false
	}
	for _, s := range g.nodes[from].Succs {
		if s == to {
			return true
		}
	}
	return false
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// SetEntry marks id as the entry node.
func (g *Graph) SetEntry(id NodeID) { g.entry = id }

// SetExit marks id as the exit node.
func (g *Graph) SetExit(id NodeID) { g.exit = id }

// Entry returns the entry node id (None if unset).
func (g *Graph) Entry() NodeID { return g.entry }

// Exit returns the exit node id (None if unset).
func (g *Graph) Exit() NodeID { return g.exit }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// Succs returns the successor list of id (shared slice; do not mutate).
func (g *Graph) Succs(id NodeID) []NodeID { return g.nodes[id].Succs }

// Preds returns the predecessor list of id (shared slice; do not mutate).
func (g *Graph) Preds(id NodeID) []NodeID { return g.nodes[id].Preds }

// Label returns the label of id.
func (g *Graph) Label(id NodeID) string {
	if !g.valid(id) {
		return fmt.Sprintf("<bad:%d>", id)
	}
	return g.nodes[id].Label
}

// Edges returns every edge in a deterministic order (by from, then successor
// position).
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, n := range g.nodes {
		for _, s := range n.Succs {
			out = append(out, Edge{n.ID, s})
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, entry: g.entry, exit: g.exit}
	c.nodes = make([]*Node, len(g.nodes))
	for i, n := range g.nodes {
		c.nodes[i] = &Node{
			ID:    n.ID,
			Label: n.Label,
			Succs: append([]NodeID(nil), n.Succs...),
			Preds: append([]NodeID(nil), n.Preds...),
		}
	}
	return c
}

// Validation errors returned by Validate.
var (
	ErrNoEntry      = errors.New("cfg: entry node not set")
	ErrNoExit       = errors.New("cfg: exit node not set")
	ErrUnreachable  = errors.New("cfg: node unreachable from entry")
	ErrCannotExit   = errors.New("cfg: node cannot reach exit")
	ErrEntryHasPred = errors.New("cfg: entry node has predecessors")
	ErrExitHasSucc  = errors.New("cfg: exit node has successors")
)

// Validate checks the structural invariants required by the profiling
// algorithms: entry and exit are set, the entry has no predecessors, the exit
// has no successors, every node is reachable from the entry, and every node
// reaches the exit.
func (g *Graph) Validate() error {
	if g.entry == None || !g.valid(g.entry) {
		return ErrNoEntry
	}
	if g.exit == None || !g.valid(g.exit) {
		return ErrNoExit
	}
	if len(g.nodes[g.entry].Preds) != 0 {
		return fmt.Errorf("%w: %s", ErrEntryHasPred, g.Label(g.entry))
	}
	if len(g.nodes[g.exit].Succs) != 0 {
		return fmt.Errorf("%w: %s", ErrExitHasSucc, g.Label(g.exit))
	}
	fwd := g.reachableFrom(g.entry, false)
	for _, n := range g.nodes {
		if !fwd[n.ID] {
			return fmt.Errorf("%w: %s", ErrUnreachable, n.Label)
		}
	}
	bwd := g.reachableFrom(g.exit, true)
	for _, n := range g.nodes {
		if !bwd[n.ID] {
			return fmt.Errorf("%w: %s", ErrCannotExit, n.Label)
		}
	}
	return nil
}

// reachableFrom returns the set of nodes reachable from start following
// successor edges (or predecessor edges when reverse is true).
func (g *Graph) reachableFrom(start NodeID, reverse bool) []bool {
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{start}
	seen[start] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		next := g.nodes[n].Succs
		if reverse {
			next = g.nodes[n].Preds
		}
		for _, s := range next {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// String renders a compact textual form, useful in test failures.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s entry=%s exit=%s\n", g.Name, g.Label(g.entry), g.Label(g.exit))
	for _, n := range g.nodes {
		labels := make([]string, len(n.Succs))
		for i, s := range n.Succs {
			labels[i] = g.Label(s)
		}
		fmt.Fprintf(&b, "  %s -> [%s]\n", n.Label, strings.Join(labels, " "))
	}
	return b.String()
}

// SortedByLabel returns all node ids ordered by label; handy for
// deterministic test output.
func (g *Graph) SortedByLabel() []NodeID {
	ids := make([]NodeID, len(g.nodes))
	for i := range g.nodes {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool { return g.Label(ids[i]) < g.Label(ids[j]) })
	return ids
}
