package cfg

import (
	"errors"
	"testing"
)

func byLabel(t *testing.T, g *Graph, l string) NodeID {
	t.Helper()
	for i := 0; i < g.Len(); i++ {
		if g.Label(NodeID(i)) == l {
			return NodeID(i)
		}
	}
	t.Fatalf("no node labeled %s", l)
	return None
}

func TestFindLoopsPaperExample(t *testing.T) {
	g := PaperLoopCFG()
	f, err := FindLoops(g)
	if err != nil {
		t.Fatalf("FindLoops: %v", err)
	}
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d; want 1", len(f.Loops))
	}
	l := f.Loops[0]
	if g.Label(l.Head) != "P1" {
		t.Fatalf("head = %s; want P1", g.Label(l.Head))
	}
	if len(l.Backedges) != 1 {
		t.Fatalf("backedges = %v; want one", l.Backedges)
	}
	// Body = {P1, B1, P2, B2, B3, P3}; En and Ex excluded.
	if len(l.Body) != 6 {
		t.Fatalf("body = %v; want 6 nodes", labelsOf(g, l.Body))
	}
	for _, lbl := range []string{"P1", "B1", "P2", "B2", "B3", "P3"} {
		if !l.Contains(byLabel(t, g, lbl)) {
			t.Fatalf("body missing %s", lbl)
		}
	}
	if l.Contains(byLabel(t, g, "En")) || l.Contains(byLabel(t, g, "Ex")) {
		t.Fatal("body contains En or Ex")
	}

	exits := l.ExitEdges(g)
	if len(exits) != 1 || g.Label(exits[0].From) != "P3" || g.Label(exits[0].To) != "Ex" {
		t.Fatalf("exit edges = %v; want [P3->Ex]", exits)
	}
	entries := l.EntryEdges(g)
	if len(entries) != 1 || g.Label(entries[0].From) != "En" {
		t.Fatalf("entry edges = %v; want [En->P1]", entries)
	}
	if !l.IsBackedge(Edge{byLabel(t, g, "P3"), byLabel(t, g, "P1")}) {
		t.Fatal("IsBackedge(P3->P1) = false")
	}
}

func TestFindLoopsNested(t *testing.T) {
	g := NestedLoopCFG()
	f, err := FindLoops(g)
	if err != nil {
		t.Fatalf("FindLoops: %v", err)
	}
	if len(f.Loops) != 2 {
		t.Fatalf("loops = %d; want 2", len(f.Loops))
	}
	outer := f.ByHead(byLabel(t, g, "H1"))
	inner := f.ByHead(byLabel(t, g, "H2"))
	if outer == nil || inner == nil {
		t.Fatalf("missing loops: outer=%v inner=%v", outer, inner)
	}
	if inner.Parent != outer {
		t.Fatalf("inner.Parent = %v; want outer", inner.Parent)
	}
	if outer.Parent != nil {
		t.Fatalf("outer.Parent = %v; want nil", outer.Parent)
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Fatalf("outer.Children = %v", outer.Children)
	}
	// Innermost: H2's body nodes map to inner; X2 maps to outer.
	if f.Innermost(byLabel(t, g, "B")) != inner {
		t.Fatal("Innermost(B) != inner")
	}
	if f.Innermost(byLabel(t, g, "X2")) != outer {
		t.Fatal("Innermost(X2) != outer")
	}
	if f.Innermost(byLabel(t, g, "En")) != nil {
		t.Fatal("Innermost(En) != nil")
	}
	// Inner body is a strict subset of outer body.
	for _, v := range inner.Body {
		if !outer.Contains(v) {
			t.Fatalf("inner body node %s not in outer body", g.Label(v))
		}
	}
	if len(inner.Body) >= len(outer.Body) {
		t.Fatal("inner body not smaller than outer body")
	}
}

func TestFindLoopsMultipleBackedges(t *testing.T) {
	// continue-style second backedge: two backedges to the same header
	// merge into one natural loop.
	g := MustBuild("t", `
		En -> H
		H -> A X
		A -> B C
		B -> H
		C -> H
		X -> Ex
	`)
	f, err := FindLoops(g)
	if err != nil {
		t.Fatalf("FindLoops: %v", err)
	}
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d; want 1", len(f.Loops))
	}
	if n := len(f.Loops[0].Backedges); n != 2 {
		t.Fatalf("backedges = %d; want 2", n)
	}
}

func TestFindLoopsIrreducible(t *testing.T) {
	// Classic irreducible region: two entries into a cycle.
	g := MustBuild("t", `
		En -> A B
		A -> B2
		B -> A2
		A2 -> B2 Ex
		B2 -> A2
	`)
	_, err := FindLoops(g)
	var irr *ErrIrreducible
	if !errors.As(err, &irr) {
		t.Fatalf("err = %v; want ErrIrreducible", err)
	}
}

func TestFindLoopsAcyclic(t *testing.T) {
	f, err := FindLoops(DiamondCFG())
	if err != nil {
		t.Fatalf("FindLoops: %v", err)
	}
	if len(f.Loops) != 0 {
		t.Fatalf("loops = %v; want none", f.Loops)
	}
}

func TestLoopForestLookupsOnPaperCallGraphs(t *testing.T) {
	for _, g := range []*Graph{PaperCallerCFG(), PaperCalleeCFG()} {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", g.Name, err)
		}
		f, err := FindLoops(g)
		if err != nil {
			t.Fatalf("FindLoops(%s): %v", g.Name, err)
		}
		if len(f.Loops) != 0 {
			t.Fatalf("%s should be loop-free, got %v", g.Name, f.Loops)
		}
	}
}
