package cfg

// This file holds the worked examples from the paper as reusable fixtures.
// They appear in tests throughout the repository, and the paper gives exact
// expected values for them (path counts, overlap degrees, estimate tables),
// which makes them high-value oracles.

// PaperLoopCFG returns the CFG of the paper's Table 2 / Table 4 example:
//
//	En -> P1; P1 -> B1, P2; P2 -> B2, B3; B1,B2,B3 -> P3;
//	P3 -> P1 (backedge), Ex
//
// It has 12 BL paths in four groups and 3 loop-body paths:
//
//	1: P1=>B1=>P3   2: P1=>P2=>B2=>P3   3: P1=>P2=>B3=>P3
//
// with maximum overlap degree 2.
func PaperLoopCFG() *Graph {
	return MustBuild("paperloop", `
		En -> P1
		P1 -> B1 P2
		P2 -> B2 B3
		B1 -> P3
		B2 -> P3
		B3 -> P3
		P3 -> P1 Ex
	`)
}

// PaperCallerCFG returns function f() from the paper's Figure 2. Successor
// order is chosen so the three fEn→C1 paths enumerate in the paper's order:
//
//	1: fEn=>P1=>P2=>B1=>B3=>C1
//	2: fEn=>P1=>P2=>B2=>B3=>C1
//	3: fEn=>P1=>B2=>B3=>C1
//
// After the call site C1 the function continues P3 -> {B4, B5} -> B6 -> fEx,
// giving the two Type II suffixes of the paper's example.
func PaperCallerCFG() *Graph {
	return MustBuild("f", `
		fEn -> P1
		P1 -> P2 B2a
		P2 -> B1 B2
		B1 -> B3
		B2 -> B3
		B2a -> B3a
		B3 -> C1
		B3a -> C1
		C1 -> P3
		P3 -> B4 B5
		B4 -> B6
		B5 -> B6a
		B6 -> fEx
		B6a -> fEx
		fEx -> Ex
	`)
}

// PaperCalleeCFG returns function g() from the paper's Figure 2 with the
// five gEn→gEx paths in the paper's order:
//
//	1: gEn=>P1=>B3=>gEx
//	2: gEn=>P1=>P2=>B1=>P3=>B3=>gEx
//	3: gEn=>P1=>P2=>B1=>P3=>B2=>B3=>gEx
//	4: gEn=>P1=>P2=>P3=>B3=>gEx
//	5: gEn=>P1=>P2=>P3=>B2=>B3=>gEx
//
// The figure's P3 is reached both from B1 and directly from P2; our graphs
// disallow parallel edges, so B2/B3 each get a forwarding twin (B2b, B3b)
// where the original drawing reused a block. The path *sequences* above are
// what the algorithms consume, and their count and branching structure match
// the paper exactly.
func PaperCalleeCFG() *Graph {
	return MustBuild("g", `
		gEn -> P1
		P1 -> B3 P2
		P2 -> B1 P3b
		B1 -> P3
		P3 -> B3a B2
		P3b -> B3b B2b
		B2 -> B3c
		B2b -> B3d
		B3 -> gEx
		B3a -> gEx
		B3b -> gEx
		B3c -> gEx
		B3d -> gEx
		gEx -> Ex
	`)
}

// DiamondCFG returns a simple if/else diamond with no loops: 2 BL paths.
func DiamondCFG() *Graph {
	return MustBuild("diamond", `
		En -> P
		P -> A B
		A -> Ex
		B -> Ex
	`)
}

// NestedLoopCFG returns a doubly-nested loop used by loop-forest and
// multi-loop profiling tests:
//
//	En -> H1; H1 -> H2, Ex; H2 -> B, X2; B -> H2 (inner backedge);
//	X2 -> H1 (outer backedge)  ... with X2 also exiting to Ex via T.
func NestedLoopCFG() *Graph {
	return MustBuild("nested", `
		En -> H1
		H1 -> H2 Ex
		H2 -> B X2
		B -> H2
		X2 -> H1 T
		T -> Ex
	`)
}
