package cfg

import (
	"strings"
	"testing"
)

func TestAddNodeAndEdge(t *testing.T) {
	g := New("t")
	a := g.AddNode("a")
	b := g.AddNode("b")
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d,%d; want 0,1", a, b)
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(a, b) {
		t.Fatal("HasEdge(a,b) = false after AddEdge")
	}
	if g.HasEdge(b, a) {
		t.Fatal("HasEdge(b,a) = true; edge is directed")
	}
	if got := g.Succs(a); len(got) != 1 || got[0] != b {
		t.Fatalf("Succs(a) = %v", got)
	}
	if got := g.Preds(b); len(got) != 1 || got[0] != a {
		t.Fatalf("Preds(b) = %v", got)
	}
}

func TestAddEdgeRejectsDuplicates(t *testing.T) {
	g := New("t")
	a := g.AddNode("a")
	b := g.AddNode("b")
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("first AddEdge: %v", err)
	}
	if err := g.AddEdge(a, b); err == nil {
		t.Fatal("duplicate AddEdge succeeded; want error")
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := New("t")
	a := g.AddNode("a")
	if err := g.AddEdge(a, 7); err == nil {
		t.Fatal("AddEdge to nonexistent node succeeded")
	}
	if err := g.AddEdge(-1, a); err == nil {
		t.Fatal("AddEdge from negative node succeeded")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New("t")
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	g.MustEdge(a, b)
	g.MustEdge(a, c)
	if !g.RemoveEdge(a, b) {
		t.Fatal("RemoveEdge(a,b) = false")
	}
	if g.HasEdge(a, b) {
		t.Fatal("edge a->b still present after removal")
	}
	if !g.HasEdge(a, c) {
		t.Fatal("edge a->c lost by unrelated removal")
	}
	if len(g.Preds(b)) != 0 {
		t.Fatalf("Preds(b) = %v after removal", g.Preds(b))
	}
	if g.RemoveEdge(a, b) {
		t.Fatal("second RemoveEdge(a,b) = true")
	}
}

func TestValidateDetectsProblems(t *testing.T) {
	t.Run("no entry", func(t *testing.T) {
		g := New("t")
		g.AddNode("a")
		if err := g.Validate(); err == nil {
			t.Fatal("Validate passed with no entry")
		}
	})
	t.Run("unreachable node", func(t *testing.T) {
		g := New("t")
		a := g.AddNode("a")
		b := g.AddNode("b")
		c := g.AddNode("c") // island
		g.MustEdge(a, b)
		g.MustEdge(c, b)
		g.SetEntry(a)
		g.SetExit(b)
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("err = %v; want unreachable", err)
		}
	})
	t.Run("cannot reach exit", func(t *testing.T) {
		g := New("t")
		a := g.AddNode("a")
		b := g.AddNode("b")
		c := g.AddNode("c") // dead end
		g.MustEdge(a, b)
		g.MustEdge(a, c)
		g.SetEntry(a)
		g.SetExit(b)
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "cannot reach exit") {
			t.Fatalf("err = %v; want cannot-reach-exit", err)
		}
	})
	t.Run("good graph", func(t *testing.T) {
		if err := PaperLoopCFG().Validate(); err != nil {
			t.Fatalf("paper loop CFG invalid: %v", err)
		}
	})
}

func TestCloneIsDeep(t *testing.T) {
	g := PaperLoopCFG()
	c := g.Clone()
	c.RemoveEdge(c.Entry(), c.Succs(c.Entry())[0])
	if err := g.Validate(); err != nil {
		t.Fatalf("mutating clone damaged original: %v", err)
	}
	if g.Len() != c.Len() {
		t.Fatalf("clone node count %d != %d", c.Len(), g.Len())
	}
}

func TestBuildSpec(t *testing.T) {
	g, err := Build("b", "a -> b c; b -> d; c -> d; d -> Ex")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Label(g.Entry()) != "a" {
		t.Fatalf("entry = %s; want a", g.Label(g.Entry()))
	}
	if g.Label(g.Exit()) != "Ex" {
		t.Fatalf("exit = %s; want Ex", g.Label(g.Exit()))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Successor order preserved.
	s := g.Succs(g.Entry())
	if g.Label(s[0]) != "b" || g.Label(s[1]) != "c" {
		t.Fatalf("succ order = %s,%s; want b,c", g.Label(s[0]), g.Label(s[1]))
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"empty", "   "},
		{"bad clause", "a b c"},
		{"two sinks", "a -> b c"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Build("t", tc.spec); err == nil {
				t.Fatalf("Build(%q) succeeded; want error", tc.spec)
			}
		})
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := PaperLoopCFG()
	e1 := g.Edges()
	e2 := g.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge order not deterministic at %d: %v vs %v", i, e1[i], e2[i])
		}
	}
	// 10 real edges in the paper loop example: En->P1, P1->{B1,P2},
	// P2->{B2,B3}, {B1,B2,B3}->P3, P3->{P1,Ex}.
	if len(e1) != 10 {
		t.Fatalf("paper loop has %d edges; want 10", len(e1))
	}
}

func TestDotRendersAllNodesAndEdges(t *testing.T) {
	g := PaperLoopCFG()
	dot := Dot(g, nil)
	for i := 0; i < g.Len(); i++ {
		if !strings.Contains(dot, g.Label(NodeID(i))) {
			t.Fatalf("dot output missing node %s:\n%s", g.Label(NodeID(i)), dot)
		}
	}
	if !strings.Contains(dot, "digraph") {
		t.Fatal("not a digraph")
	}
	// With options.
	e := g.Edges()[0]
	dot = Dot(g, &DotOptions{
		Highlight:  map[Edge]bool{e: true},
		EdgeLabels: map[Edge]string{e: "+3"},
		Shade:      map[NodeID]bool{g.Entry(): true},
	})
	if !strings.Contains(dot, "dashed") || !strings.Contains(dot, "+3") || !strings.Contains(dot, "lightgray") {
		t.Fatalf("dot options not rendered:\n%s", dot)
	}
}
