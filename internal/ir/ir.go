// Package ir defines the intermediate representation that profiled programs
// are lowered to: functions of basic blocks with explicit terminators, over
// 64-bit integer locals, globals, and fixed-size global arrays.
//
// The IR plays the role Trimaran's intermediate code played in the paper: a
// concrete program representation whose control-flow edges carry the
// profiling instrumentation. It is deliberately minimal — just enough to
// express realistic loop- and call-heavy workloads deterministically.
package ir

import (
	"fmt"
	"strings"

	"pathprof/internal/cfg"
)

// OpKind enumerates binary operators.
type OpKind int

// Binary operators. Comparisons yield 0 or 1.
const (
	OpAdd OpKind = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd // bitwise
	OpOr  // bitwise
	OpXor
)

var opNames = map[OpKind]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&", OpOr: "|", OpXor: "^",
}

func (o OpKind) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OperandKind says where an operand's value lives.
type OperandKind int

const (
	// Const is an immediate value.
	Const OperandKind = iota
	// Local is a function slot.
	Local
	// Global is a program-level scalar.
	Global
)

// Operand is a value reference.
type Operand struct {
	Kind OperandKind
	// Val is the immediate for Const operands.
	Val int64
	// Index is the slot index (Local) or global index (Global).
	Index int
}

// ConstOp returns a constant operand.
func ConstOp(v int64) Operand { return Operand{Kind: Const, Val: v} }

// LocalOp returns a local-slot operand.
func LocalOp(slot int) Operand { return Operand{Kind: Local, Index: slot} }

// GlobalOp returns a global operand.
func GlobalOp(idx int) Operand { return Operand{Kind: Global, Index: idx} }

func (o Operand) format(f *Func, p *Program) string {
	switch o.Kind {
	case Const:
		return fmt.Sprintf("%d", o.Val)
	case Local:
		if f != nil && o.Index < len(f.SlotNames) {
			return f.SlotNames[o.Index]
		}
		return fmt.Sprintf("l%d", o.Index)
	case Global:
		if p != nil && o.Index < len(p.Globals) {
			return p.Globals[o.Index]
		}
		return fmt.Sprintf("g%d", o.Index)
	default:
		return "?"
	}
}

// Dest is an assignable location: a local slot or a global.
type Dest struct {
	Kind  OperandKind // Local or Global
	Index int
}

// LocalDest returns a local destination.
func LocalDest(slot int) Dest { return Dest{Kind: Local, Index: slot} }

// GlobalDest returns a global destination.
func GlobalDest(idx int) Dest { return Dest{Kind: Global, Index: idx} }

func (d Dest) format(f *Func, p *Program) string {
	return Operand{Kind: d.Kind, Index: d.Index}.format(f, p)
}

// Instr is a straight-line instruction.
type Instr interface{ isInstr() }

// Assign copies Src into Dst.
type Assign struct {
	Dst Dest
	Src Operand
}

// BinOp computes Dst = A op B.
type BinOp struct {
	Op   OpKind
	Dst  Dest
	A, B Operand
}

// Not computes Dst = (Src == 0) ? 1 : 0.
type Not struct {
	Dst Dest
	Src Operand
}

// Neg computes Dst = -Src.
type Neg struct {
	Dst Dest
	Src Operand
}

// LoadIdx reads Dst = array[Idx].
type LoadIdx struct {
	Dst   Dest
	Array int
	Idx   Operand
}

// StoreIdx writes array[Idx] = Src.
type StoreIdx struct {
	Array int
	Idx   Operand
	Src   Operand
}

// Rand draws Dst = uniform pseudo-random in [0, Bound) from the machine's
// deterministic generator.
type Rand struct {
	Dst   Dest
	Bound Operand
}

// Print writes the operands (used by examples; the machine's output writer
// receives one line).
type Print struct {
	Args []Operand
}

// FuncRef loads the callable id of a function into Dst (for indirect
// calls — the paper's "function pointers" concern).
type FuncRef struct {
	Dst  Dest
	Name string
}

func (Assign) isInstr()   {}
func (BinOp) isInstr()    {}
func (Not) isInstr()      {}
func (Neg) isInstr()      {}
func (LoadIdx) isInstr()  {}
func (StoreIdx) isInstr() {}
func (Rand) isInstr()     {}
func (Print) isInstr()    {}
func (FuncRef) isInstr()  {}

// Terminator ends a basic block.
type Terminator interface{ isTerm() }

// Jump transfers to block To.
type Jump struct{ To int }

// Branch transfers to Then if Cond != 0, else to Else. Successor order in
// the extracted CFG is (Then, Else), which fixes Ball-Larus path ids.
type Branch struct {
	Cond       Operand
	Then, Else int
}

// Call invokes Callee with Args; the result (if HasDst) lands in Dst and
// control resumes at block Next. A block with a Call terminator is a call
// site in the paper's sense: caller prefixes end at it and caller suffixes
// begin at it.
type Call struct {
	// Callee is the function name for direct calls; for indirect calls
	// (Indirect true) Target holds the callable id.
	Callee   string
	Indirect bool
	Target   Operand
	Args     []Operand
	HasDst   bool
	Dst      Dest
	Next     int
}

// Ret returns from the function with the value of Val (if HasVal).
type Ret struct {
	HasVal bool
	Val    Operand
}

func (Jump) isTerm()   {}
func (Branch) isTerm() {}
func (Call) isTerm()   {}
func (Ret) isTerm()    {}

// Block is a basic block.
type Block struct {
	ID    int
	Label string
	Body  []Instr
	Term  Terminator
}

// Cost is the block's base "dynamic operation" weight used by the overhead
// model: two units per body instruction (an IR instruction stands for a
// short machine sequence — operand fetch plus compute/store) plus two for
// the terminator (compare and branch). The factor calibrates probe-to-base
// ratios to the scale native instrumentation sees; see internal/overhead.
func (b *Block) Cost() int64 { return 2*int64(len(b.Body)) + 2 }

// Func is one procedure.
type Func struct {
	Name string
	// NumParams leading slots receive the call arguments.
	NumParams int
	// SlotNames names every local slot (params first).
	SlotNames []string
	Blocks    []*Block
	// Entry and Exit index Blocks. The entry block has no predecessors;
	// the exit block holds the unique Ret.
	Entry, Exit int

	graph *cfg.Graph // lazily built CFG
}

// NumSlots returns the local slot count.
func (f *Func) NumSlots() int { return len(f.SlotNames) }

// Array is a global array declaration.
type Array struct {
	Name string
	Size int64
}

// Program is a whole profiled program.
type Program struct {
	Funcs   []*Func
	Globals []string
	Arrays  []Array

	byName map[string]*Func
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Func {
	if p.byName == nil {
		p.byName = map[string]*Func{}
		for _, f := range p.Funcs {
			p.byName[f.Name] = f
		}
	}
	return p.byName[name]
}

// FuncIndex returns the index of the named function, or -1. Indexes are the
// callable ids used by FuncRef/indirect calls and by the four-tuple
// interprocedural counters (the paper's `func` id).
func (p *Program) FuncIndex(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// CFG extracts (and caches) the function's control flow graph. Node ids
// equal block ids.
func (f *Func) CFG() *cfg.Graph {
	if f.graph != nil {
		return f.graph
	}
	g := cfg.New(f.Name)
	for _, b := range f.Blocks {
		label := b.Label
		if label == "" {
			label = fmt.Sprintf("b%d", b.ID)
		}
		g.AddNode(label)
	}
	for _, b := range f.Blocks {
		for _, s := range successors(b.Term) {
			// Duplicate successors (e.g. Branch with Then == Else)
			// are forbidden by Validate; MustEdge double-checks.
			g.MustEdge(cfg.NodeID(b.ID), cfg.NodeID(s))
		}
	}
	g.SetEntry(cfg.NodeID(f.Entry))
	g.SetExit(cfg.NodeID(f.Exit))
	f.graph = g
	return g
}

func successors(t Terminator) []int {
	switch t := t.(type) {
	case Jump:
		return []int{t.To}
	case Branch:
		return []int{t.Then, t.Else}
	case Call:
		return []int{t.Next}
	case Ret:
		return nil
	default:
		return nil
	}
}

// String renders the program in a readable assembly-like syntax.
func (p *Program) String() string {
	var b strings.Builder
	for i, g := range p.Globals {
		fmt.Fprintf(&b, "global %s ; g%d\n", g, i)
	}
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "array %s[%d]\n", a.Name, a.Size)
	}
	for _, f := range p.Funcs {
		b.WriteString(f.format(p))
	}
	return b.String()
}

func (f *Func) format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(%s) {\n", f.Name, strings.Join(f.SlotNames[:f.NumParams], ", "))
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s: ; #%d\n", blk.Label, blk.ID)
		for _, in := range blk.Body {
			fmt.Fprintf(&b, "  %s\n", formatInstr(in, f, p))
		}
		fmt.Fprintf(&b, "  %s\n", formatTerm(blk.Term, f, p))
	}
	b.WriteString("}\n")
	return b.String()
}

func formatInstr(in Instr, f *Func, p *Program) string {
	switch in := in.(type) {
	case Assign:
		return fmt.Sprintf("%s = %s", in.Dst.format(f, p), in.Src.format(f, p))
	case BinOp:
		return fmt.Sprintf("%s = %s %s %s", in.Dst.format(f, p), in.A.format(f, p), in.Op, in.B.format(f, p))
	case Not:
		return fmt.Sprintf("%s = !%s", in.Dst.format(f, p), in.Src.format(f, p))
	case Neg:
		return fmt.Sprintf("%s = -%s", in.Dst.format(f, p), in.Src.format(f, p))
	case LoadIdx:
		return fmt.Sprintf("%s = %s[%s]", in.Dst.format(f, p), arrayName(p, in.Array), in.Idx.format(f, p))
	case StoreIdx:
		return fmt.Sprintf("%s[%s] = %s", arrayName(p, in.Array), in.Idx.format(f, p), in.Src.format(f, p))
	case Rand:
		return fmt.Sprintf("%s = rand(%s)", in.Dst.format(f, p), in.Bound.format(f, p))
	case Print:
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = a.format(f, p)
		}
		return fmt.Sprintf("print(%s)", strings.Join(parts, ", "))
	case FuncRef:
		return fmt.Sprintf("%s = @%s", in.Dst.format(f, p), in.Name)
	default:
		return fmt.Sprintf("?%T", in)
	}
}

func formatTerm(t Terminator, f *Func, p *Program) string {
	switch t := t.(type) {
	case Jump:
		return fmt.Sprintf("jump %s", blockName(f, t.To))
	case Branch:
		return fmt.Sprintf("br %s ? %s : %s", t.Cond.format(f, p), blockName(f, t.Then), blockName(f, t.Else))
	case Call:
		callee := t.Callee
		if t.Indirect {
			callee = "*" + t.Target.format(f, p)
		}
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = a.format(f, p)
		}
		dst := ""
		if t.HasDst {
			dst = t.Dst.format(f, p) + " = "
		}
		return fmt.Sprintf("%scall %s(%s) -> %s", dst, callee, strings.Join(parts, ", "), blockName(f, t.Next))
	case Ret:
		if t.HasVal {
			return fmt.Sprintf("ret %s", t.Val.format(f, p))
		}
		return "ret"
	default:
		return fmt.Sprintf("?%T", t)
	}
}

func blockName(f *Func, id int) string {
	if f != nil && id >= 0 && id < len(f.Blocks) {
		return f.Blocks[id].Label
	}
	return fmt.Sprintf("#%d", id)
}

func arrayName(p *Program, idx int) string {
	if p != nil && idx >= 0 && idx < len(p.Arrays) {
		return p.Arrays[idx].Name
	}
	return fmt.Sprintf("a%d", idx)
}
