package ir

import "fmt"

// FuncBuilder incrementally assembles a Func. It is used by the language
// lowerer and by tests/workloads that construct IR directly.
type FuncBuilder struct {
	f     *Func
	cur   int // current block id, -1 when none selected
	slots map[string]int
}

// NewFuncBuilder starts a function with the given parameters.
func NewFuncBuilder(name string, params ...string) *FuncBuilder {
	b := &FuncBuilder{
		f:     &Func{Name: name, NumParams: len(params), Entry: -1, Exit: -1},
		cur:   -1,
		slots: map[string]int{},
	}
	for _, p := range params {
		b.Slot(p)
	}
	return b
}

// Slot returns the slot index of the named local, creating it on first use.
func (b *FuncBuilder) Slot(name string) int {
	if i, ok := b.slots[name]; ok {
		return i
	}
	i := len(b.f.SlotNames)
	b.f.SlotNames = append(b.f.SlotNames, name)
	b.slots[name] = i
	return i
}

// Temp creates a fresh anonymous slot.
func (b *FuncBuilder) Temp() int {
	return b.Slot(fmt.Sprintf(".t%d", len(b.f.SlotNames)))
}

// NewBlock appends an empty block with the given label (auto-labeled when
// empty) and returns its id. The new block becomes current.
func (b *FuncBuilder) NewBlock(label string) int {
	id := len(b.f.Blocks)
	if label == "" {
		label = fmt.Sprintf("b%d", id)
	}
	b.f.Blocks = append(b.f.Blocks, &Block{ID: id, Label: label})
	b.cur = id
	return id
}

// SetBlock selects the block subsequent Emit/Term calls target.
func (b *FuncBuilder) SetBlock(id int) { b.cur = id }

// CurBlock returns the current block id (-1 if none).
func (b *FuncBuilder) CurBlock() int { return b.cur }

// Terminated reports whether the current block already has a terminator
// (lowering uses this to suppress dead fall-through jumps).
func (b *FuncBuilder) Terminated() bool {
	return b.cur < 0 || b.f.Blocks[b.cur].Term != nil
}

// Emit appends an instruction to the current block.
func (b *FuncBuilder) Emit(in Instr) {
	if b.cur < 0 {
		panic("ir: Emit with no current block")
	}
	blk := b.f.Blocks[b.cur]
	if blk.Term != nil {
		panic(fmt.Sprintf("ir: Emit into terminated block %s", blk.Label))
	}
	blk.Body = append(blk.Body, in)
}

// Term sets the current block's terminator.
func (b *FuncBuilder) Term(t Terminator) {
	if b.cur < 0 {
		panic("ir: Term with no current block")
	}
	blk := b.f.Blocks[b.cur]
	if blk.Term != nil {
		panic(fmt.Sprintf("ir: block %s terminated twice", blk.Label))
	}
	blk.Term = t
}

// Finish fixes the entry and exit blocks and returns the function.
func (b *FuncBuilder) Finish(entry, exit int) *Func {
	b.f.Entry = entry
	b.f.Exit = exit
	return b.f
}

// Func returns the function under construction (for label back-patching).
func (b *FuncBuilder) Func() *Func { return b.f }
