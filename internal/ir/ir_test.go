package ir

import (
	"strings"
	"testing"
)

// buildAddFunc assembles: func add(a, b) { return a + b; } by hand.
func buildAddFunc() *Func {
	b := NewFuncBuilder("add", "a", "b")
	ret := b.Slot("ret")
	en := b.NewBlock("en")
	ex := b.NewBlock("ex")
	b.Term(Ret{HasVal: true, Val: LocalOp(ret)})
	body := b.NewBlock("body")
	b.SetBlock(en)
	b.Term(Jump{To: body})
	b.SetBlock(body)
	b.Emit(BinOp{Op: OpAdd, Dst: LocalDest(ret), A: LocalOp(0), B: LocalOp(1)})
	b.Term(Jump{To: ex})
	return b.Finish(en, ex)
}

func buildMain(callee string) *Func {
	b := NewFuncBuilder("main")
	en := b.NewBlock("en")
	ex := b.NewBlock("ex")
	b.Term(Ret{})
	call := b.NewBlock("call")
	after := b.NewBlock("after")
	b.SetBlock(en)
	b.Term(Jump{To: call})
	b.SetBlock(call)
	t := b.Temp()
	b.Term(Call{Callee: callee, Args: []Operand{ConstOp(1), ConstOp(2)}, HasDst: true, Dst: LocalDest(t), Next: after})
	b.SetBlock(after)
	b.Emit(Print{Args: []Operand{LocalOp(t)}})
	b.Term(Jump{To: ex})
	return b.Finish(en, ex)
}

func validProgram() *Program {
	return &Program{Funcs: []*Func{buildAddFunc(), buildMain("add")}}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		prog func() *Program
	}{
		{"no main", func() *Program {
			return &Program{Funcs: []*Func{buildAddFunc()}}
		}},
		{"main with params", func() *Program {
			f := buildAddFunc()
			f.Name = "main"
			return &Program{Funcs: []*Func{f}}
		}},
		{"duplicate func", func() *Program {
			p := validProgram()
			p.Funcs = append(p.Funcs, buildAddFunc())
			return p
		}},
		{"unknown callee", func() *Program {
			return &Program{Funcs: []*Func{buildAddFunc(), buildMain("nosuch")}}
		}},
		{"arity mismatch", func() *Program {
			p := validProgram()
			call := p.Funcs[1].Blocks[2].Term.(Call)
			call.Args = call.Args[:1]
			p.Funcs[1].Blocks[2].Term = call
			return p
		}},
		{"branch same arms", func() *Program {
			p := validProgram()
			f := p.Funcs[1]
			f.Blocks[2].Term = Branch{Cond: ConstOp(1), Then: 3, Else: 3}
			return p
		}},
		{"ret not at exit", func() *Program {
			p := validProgram()
			f := p.Funcs[1]
			f.Blocks[3].Term = Ret{}
			return p
		}},
		{"bad slot", func() *Program {
			p := validProgram()
			f := p.Funcs[0]
			f.Blocks[2].Body = append(f.Blocks[2].Body, Assign{Dst: LocalDest(99), Src: ConstOp(0)})
			return p
		}},
		{"bad target", func() *Program {
			p := validProgram()
			p.Funcs[0].Blocks[2].Term = Jump{To: 42}
			return p
		}},
		{"bad global", func() *Program {
			p := validProgram()
			f := p.Funcs[0]
			f.Blocks[2].Body = append(f.Blocks[2].Body, Assign{Dst: GlobalDest(3), Src: ConstOp(0)})
			return p
		}},
		{"bad array", func() *Program {
			p := validProgram()
			f := p.Funcs[0]
			f.Blocks[2].Body = append(f.Blocks[2].Body, StoreIdx{Array: 2, Idx: ConstOp(0), Src: ConstOp(0)})
			return p
		}},
		{"unknown funcref", func() *Program {
			p := validProgram()
			f := p.Funcs[0]
			f.Blocks[2].Body = append(f.Blocks[2].Body, FuncRef{Dst: LocalDest(0), Name: "ghost"})
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.prog().Validate(); err == nil {
				t.Fatal("Validate accepted malformed program")
			}
		})
	}
}

func TestCFGExtraction(t *testing.T) {
	f := buildMain("add")
	g := f.CFG()
	if err := g.Validate(); err != nil {
		t.Fatalf("CFG invalid: %v", err)
	}
	if g.Len() != len(f.Blocks) {
		t.Fatalf("CFG nodes %d != blocks %d", g.Len(), len(f.Blocks))
	}
	// Call terminator produces a single successor to Next.
	succ := g.Succs(2)
	if len(succ) != 1 || int(succ[0]) != 3 {
		t.Fatalf("call block successors = %v", succ)
	}
	// CFG is cached.
	if f.CFG() != g {
		t.Fatal("CFG not cached")
	}
}

func TestFuncLookupAndIndex(t *testing.T) {
	p := validProgram()
	if p.FuncByName("add") == nil || p.FuncByName("main") == nil {
		t.Fatal("FuncByName failed")
	}
	if p.FuncByName("nope") != nil {
		t.Fatal("FuncByName invented a function")
	}
	if p.FuncIndex("add") != 0 || p.FuncIndex("main") != 1 || p.FuncIndex("x") != -1 {
		t.Fatal("FuncIndex wrong")
	}
}

func TestBlockCost(t *testing.T) {
	b := &Block{Body: []Instr{Assign{}, Assign{}, Assign{}}}
	if c := b.Cost(); c != 8 {
		t.Fatalf("Cost = %d; want 8 (2*3+2)", c)
	}
}

func TestProgramString(t *testing.T) {
	p := validProgram()
	p.Globals = []string{"g"}
	p.Arrays = []Array{{Name: "tab", Size: 4}}
	s := p.String()
	for _, want := range []string{"func add", "func main", "call add(1, 2)", "ret", "global g", "array tab[4]", "a + b"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("Emit without block", func() {
		NewFuncBuilder("f").Emit(Assign{})
	})
	assertPanics("double Term", func() {
		b := NewFuncBuilder("f")
		b.NewBlock("x")
		b.Term(Ret{})
		b.Term(Ret{})
	})
	assertPanics("Emit after Term", func() {
		b := NewFuncBuilder("f")
		b.NewBlock("x")
		b.Term(Ret{})
		b.Emit(Assign{})
	})
}

func TestBuilderSlots(t *testing.T) {
	b := NewFuncBuilder("f", "p1", "p2")
	if b.Slot("p1") != 0 || b.Slot("p2") != 1 {
		t.Fatal("param slots wrong")
	}
	x := b.Slot("x")
	if b.Slot("x") != x {
		t.Fatal("Slot not idempotent")
	}
	t1, t2 := b.Temp(), b.Temp()
	if t1 == t2 {
		t.Fatal("Temp reused a slot")
	}
	if b.Func().NumParams != 2 {
		t.Fatalf("NumParams = %d", b.Func().NumParams)
	}
}
