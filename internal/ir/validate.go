package ir

import (
	"fmt"
)

// Validate checks the structural invariants the profiling pipeline relies
// on, for the whole program.
func (p *Program) Validate() error {
	names := map[string]bool{}
	for _, f := range p.Funcs {
		if names[f.Name] {
			return fmt.Errorf("ir: duplicate function %q", f.Name)
		}
		names[f.Name] = true
	}
	if p.FuncByName("main") == nil {
		return fmt.Errorf("ir: no main function")
	}
	if p.FuncByName("main").NumParams != 0 {
		return fmt.Errorf("ir: main must take no parameters")
	}
	for _, f := range p.Funcs {
		if err := f.Validate(p); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	return nil
}

// Validate checks one function: block ids dense and labeled, every
// terminator target in range, a unique Ret at the exit block, every call
// target resolvable, operand indices in range, and a CFG satisfying the
// profiling preconditions (entry without predecessors, every block reaching
// the exit).
func (f *Func) Validate(p *Program) error {
	if f.NumParams > len(f.SlotNames) {
		return fmt.Errorf("%d params but %d slots", f.NumParams, len(f.SlotNames))
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	labels := map[string]bool{}
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("block %d has id %d", i, b.ID)
		}
		if b.Label == "" {
			return fmt.Errorf("block %d unlabeled", i)
		}
		if labels[b.Label] {
			return fmt.Errorf("duplicate block label %q", b.Label)
		}
		labels[b.Label] = true
		if b.Term == nil {
			return fmt.Errorf("block %s has no terminator", b.Label)
		}
		for _, s := range successors(b.Term) {
			if s < 0 || s >= len(f.Blocks) {
				return fmt.Errorf("block %s targets block %d of %d", b.Label, s, len(f.Blocks))
			}
		}
		if br, ok := b.Term.(Branch); ok && br.Then == br.Else {
			return fmt.Errorf("block %s branches to %d on both arms", b.Label, br.Then)
		}
		if _, isRet := b.Term.(Ret); isRet != (i == f.Exit) {
			if isRet {
				return fmt.Errorf("block %s has Ret but is not the exit block", b.Label)
			}
			return fmt.Errorf("exit block %s does not end in Ret", b.Label)
		}
		if err := f.validateOps(b, p); err != nil {
			return fmt.Errorf("block %s: %w", b.Label, err)
		}
	}
	if f.Entry < 0 || f.Entry >= len(f.Blocks) || f.Exit < 0 || f.Exit >= len(f.Blocks) {
		return fmt.Errorf("entry/exit out of range")
	}
	return f.CFG().Validate()
}

func (f *Func) validateOps(b *Block, p *Program) error {
	checkOp := func(o Operand) error {
		switch o.Kind {
		case Local:
			if o.Index < 0 || o.Index >= len(f.SlotNames) {
				return fmt.Errorf("local slot %d of %d", o.Index, len(f.SlotNames))
			}
		case Global:
			if p != nil && (o.Index < 0 || o.Index >= len(p.Globals)) {
				return fmt.Errorf("global %d of %d", o.Index, len(p.Globals))
			}
		}
		return nil
	}
	checkDst := func(d Dest) error {
		if d.Kind != Local && d.Kind != Global {
			return fmt.Errorf("destination of kind %d", d.Kind)
		}
		return checkOp(Operand{Kind: d.Kind, Index: d.Index})
	}
	checkArr := func(idx int) error {
		if p != nil && (idx < 0 || idx >= len(p.Arrays)) {
			return fmt.Errorf("array %d of %d", idx, len(p.Arrays))
		}
		return nil
	}

	for _, in := range b.Body {
		var err error
		switch in := in.(type) {
		case Assign:
			err = firstErr(checkDst(in.Dst), checkOp(in.Src))
		case BinOp:
			err = firstErr(checkDst(in.Dst), checkOp(in.A), checkOp(in.B))
		case Not:
			err = firstErr(checkDst(in.Dst), checkOp(in.Src))
		case Neg:
			err = firstErr(checkDst(in.Dst), checkOp(in.Src))
		case LoadIdx:
			err = firstErr(checkDst(in.Dst), checkArr(in.Array), checkOp(in.Idx))
		case StoreIdx:
			err = firstErr(checkArr(in.Array), checkOp(in.Idx), checkOp(in.Src))
		case Rand:
			err = firstErr(checkDst(in.Dst), checkOp(in.Bound))
		case Print:
			for _, a := range in.Args {
				err = firstErr(err, checkOp(a))
			}
		case FuncRef:
			err = checkDst(in.Dst)
			if err == nil && p != nil && p.FuncByName(in.Name) == nil {
				err = fmt.Errorf("funcref to unknown %q", in.Name)
			}
		default:
			err = fmt.Errorf("unknown instruction %T", in)
		}
		if err != nil {
			return err
		}
	}

	if c, ok := b.Term.(Call); ok {
		if c.Indirect {
			if err := checkOp(c.Target); err != nil {
				return err
			}
		} else if p != nil {
			callee := p.FuncByName(c.Callee)
			if callee == nil {
				return fmt.Errorf("call to unknown %q", c.Callee)
			}
			if len(c.Args) != callee.NumParams {
				return fmt.Errorf("call %s with %d args, want %d", c.Callee, len(c.Args), callee.NumParams)
			}
		}
		for _, a := range c.Args {
			if err := checkOp(a); err != nil {
				return err
			}
		}
		if c.HasDst {
			if err := checkDst(c.Dst); err != nil {
				return err
			}
		}
	}
	if r, ok := b.Term.(Ret); ok && r.HasVal {
		if err := checkOp(r.Val); err != nil {
			return err
		}
	}
	if br, ok := b.Term.(Branch); ok {
		if err := checkOp(br.Cond); err != nil {
			return err
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
