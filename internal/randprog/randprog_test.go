package randprog

import (
	"math/rand"
	"strings"
	"testing"

	"pathprof/internal/interp"
	"pathprof/internal/lang"
)

func TestGeneratedProgramsCompileAndTerminate(t *testing.T) {
	for seed := int64(0); seed < CorpusSeeds; seed++ {
		src := SeedSource(seed)
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n--- source ---\n%s", seed, err, src)
		}
		m := interp.New(prog, uint64(seed))
		m.MaxSteps = MaxRunSteps
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d: run: %v\n--- source ---\n%s", seed, err, src)
		}
		if m.Steps < MinUsefulSteps {
			t.Fatalf("seed %d: only %d steps; degenerate program (floor %d)", seed, m.Steps, MinUsefulSteps)
		}
	}
}

func TestGeneratedProgramsAreDiverse(t *testing.T) {
	// Across seeds the generator must produce loops, calls, indirect
	// calls, do-while loops, and breaks somewhere.
	features := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := Generate(r, DefaultConfig())
		for feat, marker := range map[string]string{
			"for":      "for (",
			"while":    "while (",
			"do":       "do {",
			"call":     "fn0(",
			"indirect": "= @fn",
			"break":    "break;",
			"continue": "continue;",
			"logical":  "&&",
		} {
			if strings.Contains(src, marker) {
				features[feat] = true
			}
		}
	}
	for _, feat := range []string{"for", "while", "do", "call", "indirect", "break", "continue", "logical"} {
		if !features[feat] {
			t.Errorf("no generated program used %q across 40 seeds", feat)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), DefaultConfig())
	b := Generate(rand.New(rand.NewSource(7)), DefaultConfig())
	if a != b {
		t.Fatal("same seed produced different programs")
	}
}
