package randprog

// This file fixes the thresholds the fuzzing and oracle harnesses share and
// provides the corpus-harvest helper the differential oracle and the native
// Go fuzz targets seed themselves from. Every magic number that used to be
// scattered across the test files (step floors, step caps, corpus sizes)
// lives here under one name, so the harnesses cannot drift apart.

import (
	"fmt"
	"math/rand"

	"pathprof/internal/interp"
	"pathprof/internal/lang"
)

const (
	// MinUsefulSteps is the step floor below which a generated program is
	// considered degenerate (it barely exercises the profiling machinery).
	MinUsefulSteps = 50

	// MaxOracleSteps caps the uninstrumented step count of programs the
	// full cross-validation battery runs: heavier programs are skipped, as
	// the multi-run matrix (degrees x stores x sweep modes) would dominate
	// test time without adding coverage.
	MaxOracleSteps = 400_000

	// MaxRunSteps is the interpreter hard limit for harness runs; hitting
	// it means the termination guarantee broke, which is itself a bug.
	MaxRunSteps = 8_000_000

	// CorpusSeeds is the size of the standard generator-seed sweep the
	// package's own tests (and the harvested fuzz corpus) cover.
	CorpusSeeds = 60

	// harvestScanLimit bounds the generator seeds HarvestCorpus examines
	// before giving up on reaching the requested corpus size.
	harvestScanLimit = 4 * CorpusSeeds
)

// Seed is one harvested corpus entry: a generator seed whose program
// compiled, terminated within the step bounds, and is therefore suitable as
// an oracle or fuzz input. Steps records the uninstrumented step count at
// interpreter seed == GenSeed (the harnesses' convention).
type Seed struct {
	GenSeed int64
	Steps   int64
}

// SeedSource regenerates the canonical program of one generator seed under
// the default configuration — the single definition of "the program of seed
// s" shared by the e2e sweep, the oracle battery, and the fuzz targets.
func SeedSource(genSeed int64) string {
	return Generate(rand.New(rand.NewSource(genSeed)), DefaultConfig())
}

// HarvestCorpus scans generator seeds from 0 upward and returns the first n
// whose programs execute (uninstrumented, interpreter seed == generator
// seed) in [MinUsefulSteps, maxSteps] steps. It errors if a program fails
// to compile or run — the generator's termination guarantee must hold on
// every seed — or if the scan limit is reached before n seeds qualify.
func HarvestCorpus(n int, maxSteps int64) ([]Seed, error) {
	var out []Seed
	for genSeed := int64(0); genSeed < harvestScanLimit && len(out) < n; genSeed++ {
		steps, err := MeasureSteps(genSeed)
		if err != nil {
			return nil, err
		}
		if steps < MinUsefulSteps || steps > maxSteps {
			continue
		}
		out = append(out, Seed{GenSeed: genSeed, Steps: steps})
	}
	if len(out) < n {
		return nil, fmt.Errorf("randprog: only %d/%d seeds within [%d,%d] steps after scanning %d",
			len(out), n, MinUsefulSteps, maxSteps, harvestScanLimit)
	}
	return out, nil
}

// MeasureSteps compiles and runs the program of genSeed uninstrumented and
// returns its step count.
func MeasureSteps(genSeed int64) (int64, error) {
	prog, err := lang.Compile(SeedSource(genSeed))
	if err != nil {
		return 0, fmt.Errorf("randprog: seed %d: compile: %w", genSeed, err)
	}
	m := interp.New(prog, uint64(genSeed))
	m.MaxSteps = MaxRunSteps
	if err := m.Run(); err != nil {
		return 0, fmt.Errorf("randprog: seed %d: run: %w", genSeed, err)
	}
	return m.Steps, nil
}
