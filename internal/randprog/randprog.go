// Package randprog generates random, always-terminating programs in the
// bundled language. The end-to-end test suite uses it to fuzz the whole
// pipeline: every generated program must compile, run, and produce
// instrumented counters that match the ground-truth tracer key for key, at
// every overlap degree.
//
// Termination is guaranteed by construction: every loop iterates over a
// fresh counter with a constant bound, recursion happens only through a
// dedicated self-decrementing function with a base case, and all other
// calls go strictly to earlier-defined functions.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program's size.
type Config struct {
	// Funcs is the number of helper functions (≥ 1).
	Funcs int
	// MaxStmtsPerBlock bounds statement-list length.
	MaxStmtsPerBlock int
	// MaxDepth bounds statement nesting.
	MaxDepth int
	// MainIters is the trip count of main's driver loop.
	MainIters int
}

// DefaultConfig is sized so a generated program runs in well under a
// millisecond while still exercising loops, calls, branches, indirect calls
// and recursion.
func DefaultConfig() Config {
	return Config{Funcs: 4, MaxStmtsPerBlock: 4, MaxDepth: 3, MainIters: 40}
}

// Generate produces one random program.
func Generate(r *rand.Rand, cfg Config) string {
	if cfg.Funcs < 1 {
		cfg = DefaultConfig()
	}
	g := &gen{r: r, cfg: cfg}
	return g.program()
}

type gen struct {
	r   *rand.Rand
	cfg Config
	// scope state for the function being generated. locals are readable;
	// assignable excludes loop counters, whose mutation could break the
	// termination guarantee.
	locals     []string
	assignable []string
	allowRet   bool
	// breakOK is false at the top level of main's driver loop, where a
	// break would end the whole workload.
	breakOK bool
	loops   int
	counter int
	// funcs generated so far (callable from later functions)
	funcs []string
}

func (g *gen) fresh(prefix string) string {
	g.counter++
	return fmt.Sprintf("%s%d", prefix, g.counter)
}

func (g *gen) pickLocal() string {
	return g.locals[g.r.Intn(len(g.locals))]
}

func (g *gen) pickVar() string {
	// A non-counter local or a global.
	if len(g.assignable) == 0 || g.r.Intn(4) == 0 {
		return fmt.Sprintf("gv%d", g.r.Intn(3))
	}
	return g.assignable[g.r.Intn(len(g.assignable))]
}

// expr generates an expression of bounded depth. Division and modulo only
// appear with non-zero constant divisors, so no runtime error is possible.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(100))
		case 1:
			return g.pickLocal()
		case 2:
			return fmt.Sprintf("gv%d", g.r.Intn(3))
		case 3:
			return fmt.Sprintf("rand(%d)", 2+g.r.Intn(50))
		default:
			return fmt.Sprintf("tab[(%s %% 64 + 64) %% 64]", g.pickLocal())
		}
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %d)", a, 1+g.r.Intn(4))
	case 3:
		return fmt.Sprintf("(%s / %d)", a, 2+g.r.Intn(6))
	case 4:
		return fmt.Sprintf("(%s %% %d)", a, 2+g.r.Intn(8))
	case 5:
		return fmt.Sprintf("(%s < %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s == %s)", a, b)
	default:
		return fmt.Sprintf("(%s && %s)", a, b)
	}
}

// cond generates a branch condition.
func (g *gen) cond() string {
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s %% %d == %d", g.pickLocal(), 2+g.r.Intn(4), g.r.Intn(2))
	case 1:
		return fmt.Sprintf("rand(%d) == 0", 2+g.r.Intn(4))
	case 2:
		return fmt.Sprintf("%s < %s", g.expr(1), g.expr(1))
	default:
		return fmt.Sprintf("%s > %d || %s == 0", g.pickLocal(), g.r.Intn(50), g.pickLocal())
	}
}

// call generates a call expression to an earlier function (or the recursive
// helper).
func (g *gen) call() string {
	if len(g.funcs) == 0 {
		return g.expr(1)
	}
	name := g.funcs[g.r.Intn(len(g.funcs))]
	return fmt.Sprintf("%s(%s)", name, g.expr(1))
}

func (g *gen) stmts(depth int, inLoop bool, b *strings.Builder, indent string) {
	n := 1 + g.r.Intn(g.cfg.MaxStmtsPerBlock)
	for i := 0; i < n; i++ {
		g.stmt(depth, inLoop, b, indent)
	}
}

func (g *gen) stmt(depth int, inLoop bool, b *strings.Builder, indent string) {
	choice := g.r.Intn(10)
	if depth <= 0 && choice >= 4 && choice <= 6 {
		choice = 0 // no further nesting
	}
	switch choice {
	case 0, 1: // assignment
		fmt.Fprintf(b, "%s%s = %s;\n", indent, g.pickVar(), g.expr(2))
	case 2: // array store
		fmt.Fprintf(b, "%stab[(%s %% 64 + 64) %% 64] = %s;\n", indent, g.pickLocal(), g.expr(1))
	case 3: // call for effect / into a variable
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(b, "%s%s = %s;\n", indent, g.pickVar(), g.call())
		} else {
			fmt.Fprintf(b, "%s%s;\n", indent, g.call())
		}
	case 4: // if / if-else
		fmt.Fprintf(b, "%sif (%s) {\n", indent, g.cond())
		g.stmts(depth-1, inLoop, b, indent+"\t")
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(b, "%s} else {\n", indent)
			g.stmts(depth-1, inLoop, b, indent+"\t")
		}
		fmt.Fprintf(b, "%s}\n", indent)
	case 5: // bounded for loop
		v := g.fresh("i")
		g.locals = append(g.locals, v) // readable only
		bound := 2 + g.r.Intn(5)
		fmt.Fprintf(b, "%sfor (var %s = 0; %s < %d; %s = %s + 1) {\n",
			indent, v, v, bound, v, v)
		g.loops++
		savedBreak := g.breakOK
		g.breakOK = true
		g.stmts(depth-1, true, b, indent+"\t")
		g.breakOK = savedBreak
		g.loops--
		fmt.Fprintf(b, "%s}\n", indent)
	case 6: // bounded while or do-while loop
		v := g.fresh("w")
		g.locals = append(g.locals, v) // readable only
		bound := 2 + g.r.Intn(4)
		isDo := g.r.Intn(2) == 0
		if isDo {
			fmt.Fprintf(b, "%svar %s = 0;\n%sdo {\n%s\t%s = %s + 1;\n",
				indent, v, indent, indent, v, v)
		} else {
			fmt.Fprintf(b, "%svar %s = 0;\n%swhile (%s < %d) {\n%s\t%s = %s + 1;\n",
				indent, v, indent, v, bound, indent, v, v)
		}
		g.loops++
		savedBreak := g.breakOK
		g.breakOK = true
		g.stmts(depth-1, true, b, indent+"\t")
		g.breakOK = savedBreak
		g.loops--
		if isDo {
			fmt.Fprintf(b, "%s} while (%s < %d);\n", indent, v, bound)
		} else {
			fmt.Fprintf(b, "%s}\n", indent)
		}
	case 7: // break / continue (inside loops only)
		if inLoop {
			kw := "continue"
			if g.breakOK && g.r.Intn(2) == 0 {
				kw = "break"
			}
			fmt.Fprintf(b, "%sif (rand(6) == 0) { %s; }\n", indent, kw)
		} else {
			fmt.Fprintf(b, "%s%s = %s;\n", indent, g.pickVar(), g.expr(1))
		}
	case 8: // early return (never in main: it must run its driver loop)
		if g.allowRet && g.r.Intn(3) == 0 {
			fmt.Fprintf(b, "%sif (rand(8) == 0) { return %s; }\n", indent, g.expr(1))
		} else {
			fmt.Fprintf(b, "%s%s = %s;\n", indent, g.pickVar(), g.expr(1))
		}
	default: // indirect call through a function value
		if len(g.funcs) >= 2 {
			fv := g.fresh("f")
			g.locals = append(g.locals, fv) // function values stay un-assignable via pickVar
			fmt.Fprintf(b, "%svar %s = @%s;\n", indent, fv, g.funcs[g.r.Intn(len(g.funcs))])
			fmt.Fprintf(b, "%sif (%s) { %s = @%s; }\n", indent, g.cond(), fv, g.funcs[g.r.Intn(len(g.funcs))])
			fmt.Fprintf(b, "%s%s = %s(%s);\n", indent, g.pickVar(), fv, g.expr(1))
		} else {
			fmt.Fprintf(b, "%s%s = %s;\n", indent, g.pickVar(), g.expr(1))
		}
	}
}

func (g *gen) function(name string, recursive bool) string {
	var b strings.Builder
	g.locals = []string{"x"}
	g.assignable = nil // x stays intact: the recursion guarantee reads it
	g.allowRet = true
	g.breakOK = true
	fmt.Fprintf(&b, "func %s(x) {\n", name)
	// Fuel guard: bounds total helper activations program-wide, so no
	// random composition of loops and calls can blow up the run time.
	fmt.Fprintf(&b, "\tgfuel = gfuel + 1;\n\tif (gfuel > 2500) { return 0; }\n")
	fmt.Fprintf(&b, "\tvar t0 = x;\n")
	g.locals = append(g.locals, "t0")
	g.assignable = append(g.assignable, "t0")
	if recursive {
		// Guaranteed-terminating recursion: strictly decreasing
		// argument with a base case.
		fmt.Fprintf(&b, "\tif (x <= 0) { return 1; }\n")
		fmt.Fprintf(&b, "\tvar sub = %s(x - 1 - rand(2));\n", name)
		g.locals = append(g.locals, "sub")
		g.assignable = append(g.assignable, "sub")
	}
	g.stmts(g.cfg.MaxDepth, false, &b, "\t")
	fmt.Fprintf(&b, "\treturn %s;\n}\n", g.expr(1))
	return b.String()
}

func (g *gen) program() string {
	var b strings.Builder
	b.WriteString("var gv0;\nvar gv1;\nvar gv2;\nvar gfuel;\narray tab[64];\n\n")

	for i := 0; i < g.cfg.Funcs; i++ {
		name := fmt.Sprintf("fn%d", i)
		recursive := i == 0 && g.r.Intn(2) == 0
		b.WriteString(g.function(name, recursive))
		b.WriteString("\n")
		g.funcs = append(g.funcs, name)
	}

	// main drives everything with a bounded loop.
	g.locals = []string{}
	g.assignable = nil
	g.allowRet = false
	g.breakOK = false
	var mb strings.Builder
	fmt.Fprintf(&mb, "func main() {\n\tvar acc = 0;\n")
	g.locals = append(g.locals, "acc")
	g.assignable = append(g.assignable, "acc")
	fmt.Fprintf(&mb, "\tfor (var it = 0; it < %d; it = it + 1) {\n", g.cfg.MainIters)
	g.locals = append(g.locals, "it") // readable only
	g.stmts(g.cfg.MaxDepth, true, &mb, "\t\t")
	fmt.Fprintf(&mb, "\t\tacc = acc + %s;\n\t}\n\tprint(acc);\n}\n", g.call())
	b.WriteString(mb.String())
	return b.String()
}
