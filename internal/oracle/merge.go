package oracle

import (
	"bytes"
	"errors"
	"fmt"

	"pathprof/internal/instrument"
	"pathprof/internal/merge"
	"pathprof/internal/profile"
)

// mergeChunks is how many independently profiled chunks the merge cell
// splits the workload into.
const mergeChunks = 3

// checkMerge validates the profile-aggregation invariant end to end: the
// workload, split into mergeChunks independent runs (seeds seed..seed+S-1)
// each profiled into a fresh store, folded back together through
// merge.MergeAll, must serialize byte-identically to the unsplit
// "concatenated" run — the same S seeds executed back-to-back accumulating
// into one reused store. Checked for every configured store layout at every
// configured window width at the highest configured degree on the VM engine
// (the daemon's execution cell), so a merge bug cannot hide behind any one
// layout's or width's accumulation path. As a coda it proves the width
// guard has teeth: snapshots profiled at different widths must refuse to
// fold with merge.ErrIncompatible.
func (c *checker) checkMerge() error {
	k := c.cfg.Ks[len(c.cfg.Ks)-1]
	eng := c.cfg.Engines[len(c.cfg.Engines)-1]

	// One surviving snapshot per width feeds the incompatibility coda.
	byWidth := map[int]*merge.Snapshot{}
	for _, iters := range c.cfg.Iters {
		cfg := instrument.Config{K: k, Loops: true, Interproc: true, Iters: iters}
		for _, kind := range c.cfg.Stores {
			cl := cell{k: k, iters: iters, kind: kind, eng: eng}

			whole := profile.NewStore(kind, c.p.Info, cfg.EffIters())
			snaps := make([]*merge.Snapshot, 0, mergeChunks)
			for i := 0; i < mergeChunks; i++ {
				seed := c.seed + uint64(i)
				// Concatenated side: accumulate into the one reused store.
				if _, err := c.p.ExecuteStore(eng, cfg, seed, nil, whole, c.cfg.MaxRunSteps); err != nil {
					return fmt.Errorf("oracle: merge whole chunk %d iters=%d store=%s: %w", i, iters, kind, err)
				}
				// Split side: a fresh store per chunk, snapshotted.
				r, err := c.p.ExecuteStore(eng, cfg, seed, nil,
					profile.NewStore(kind, c.p.Info, cfg.EffIters()), c.cfg.MaxRunSteps)
				if err != nil {
					return fmt.Errorf("oracle: merge chunk %d iters=%d store=%s: %w", i, iters, kind, err)
				}
				c.res.Runs += 2
				if c.tamperChunk != nil {
					c.tamperChunk(i, r.Counters)
				}
				snaps = append(snaps, merge.New(k, iters, r.Counters))
			}

			merged, err := merge.MergeAll(snaps...)
			if err != nil {
				return fmt.Errorf("oracle: merge fold iters=%d store=%s: %w", iters, kind, err)
			}
			byWidth[iters] = merged
			var mergedRaw, wholeRaw bytes.Buffer
			if err := merged.Counters.Serialize(&mergedRaw); err != nil {
				return fmt.Errorf("oracle: merge serialize iters=%d store=%s: %w", iters, kind, err)
			}
			if err := whole.Counters().Serialize(&wholeRaw); err != nil {
				return fmt.Errorf("oracle: merge whole serialize iters=%d store=%s: %w", iters, kind, err)
			}
			if !bytes.Equal(mergedRaw.Bytes(), wholeRaw.Bytes()) {
				c.violate("merge", cl,
					"merged %d-chunk profile diverges from concatenated run (%d vs %d bytes)",
					mergeChunks, mergedRaw.Len(), wholeRaw.Len())
			}
		}
	}

	for _, a := range c.cfg.Iters {
		for _, b := range c.cfg.Iters {
			if a >= b {
				continue
			}
			if _, err := merge.MergeAll(byWidth[a], byWidth[b]); !errors.Is(err, merge.ErrIncompatible) {
				c.violate("merge/compat", cell{k: k, iters: b, eng: eng},
					"folding iters=%d into iters=%d returned %v, want ErrIncompatible", b, a, err)
			}
		}
	}
	return nil
}
