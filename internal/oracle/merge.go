package oracle

import (
	"bytes"
	"fmt"

	"pathprof/internal/instrument"
	"pathprof/internal/merge"
	"pathprof/internal/profile"
)

// mergeChunks is how many independently profiled chunks the merge cell
// splits the workload into.
const mergeChunks = 3

// checkMerge validates the profile-aggregation invariant end to end: the
// workload, split into mergeChunks independent runs (seeds seed..seed+S-1)
// each profiled into a fresh store, folded back together through
// merge.MergeAll, must serialize byte-identically to the unsplit
// "concatenated" run — the same S seeds executed back-to-back accumulating
// into one reused store. Checked for every configured store layout at the
// highest configured degree on the VM engine (the daemon's execution cell),
// so a merge bug cannot hide behind any one layout's accumulation path.
func (c *checker) checkMerge() error {
	k := c.cfg.Ks[len(c.cfg.Ks)-1]
	eng := c.cfg.Engines[len(c.cfg.Engines)-1]
	cfg := instrument.Config{K: k, Loops: true, Interproc: true}

	for _, kind := range c.cfg.Stores {
		cl := cell{k: k, kind: kind, eng: eng}

		whole := profile.NewStore(kind, c.p.Info)
		snaps := make([]*merge.Snapshot, 0, mergeChunks)
		for i := 0; i < mergeChunks; i++ {
			seed := c.seed + uint64(i)
			// Concatenated side: accumulate into the one reused store.
			if _, err := c.p.ExecuteStore(eng, cfg, seed, nil, whole, c.cfg.MaxRunSteps); err != nil {
				return fmt.Errorf("oracle: merge whole chunk %d store=%s: %w", i, kind, err)
			}
			// Split side: a fresh store per chunk, snapshotted.
			r, err := c.p.ExecuteStore(eng, cfg, seed, nil, profile.NewStore(kind, c.p.Info), c.cfg.MaxRunSteps)
			if err != nil {
				return fmt.Errorf("oracle: merge chunk %d store=%s: %w", i, kind, err)
			}
			c.res.Runs += 2
			if c.tamperChunk != nil {
				c.tamperChunk(i, r.Counters)
			}
			snaps = append(snaps, merge.New(k, r.Counters))
		}

		merged, err := merge.MergeAll(snaps...)
		if err != nil {
			return fmt.Errorf("oracle: merge fold store=%s: %w", kind, err)
		}
		var mergedRaw, wholeRaw bytes.Buffer
		if err := merged.Counters.Serialize(&mergedRaw); err != nil {
			return fmt.Errorf("oracle: merge serialize store=%s: %w", kind, err)
		}
		if err := whole.Counters().Serialize(&wholeRaw); err != nil {
			return fmt.Errorf("oracle: merge whole serialize store=%s: %w", kind, err)
		}
		if !bytes.Equal(mergedRaw.Bytes(), wholeRaw.Bytes()) {
			c.violate("merge", cl,
				"merged %d-chunk profile diverges from concatenated run (%d vs %d bytes)",
				mergeChunks, mergedRaw.Len(), wholeRaw.Len())
		}
	}
	return nil
}
