package oracle

// This file implements the metamorphic invariant battery. Each check
// appends Violations rather than failing fast, so one oracle run reports
// everything that is wrong with a build at once.

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"pathprof/internal/estimate"
	"pathprof/internal/profile"
	"pathprof/internal/trace"
)

// expectedAt derives the trace-side expected counters of one (degree,
// window width) cell (cached per pair: they are store-independent; only the
// loop family depends on the width).
type expected struct {
	loop map[profile.LoopKey]uint64
	t1   map[profile.TypeIKey]uint64
	t2   map[profile.TypeIIKey]uint64
}

type kiKey struct{ k, iters int }

func (c *checker) expectedAt(k, iters int) (*expected, error) {
	loop, err := c.tr.ExpectedLoopCountersIters(k, iters)
	if err != nil {
		return nil, fmt.Errorf("oracle: expected loop counters k=%d iters=%d: %w", k, iters, err)
	}
	t1, err := c.tr.ExpectedTypeI(k)
	if err != nil {
		return nil, fmt.Errorf("oracle: expected Type I counters k=%d: %w", k, err)
	}
	t2, err := c.tr.ExpectedTypeII(k)
	if err != nil {
		return nil, fmt.Errorf("oracle: expected Type II counters k=%d: %w", k, err)
	}
	return &expected{loop: loop, t1: t1, t2: t2}, nil
}

// checkCounters validates, for every matrix cell, that the instrumented
// counters equal the trace-derived expectations key-for-key; that the BL
// substrate is untouched by OL instrumentation (at k = 0 this is the
// paper's OL-0 == BL identity); that widened (iters > 2) loop counters
// project onto the two-iteration profile exactly when folded to their first
// crossing (the invariant estimate relies on); and that the conservation
// sums hold: every call contributes exactly one Type I and one Type II
// pair, and the loop counter mass of a loop equals its backedge-crossing
// count at every width.
func (c *checker) checkCounters() error {
	byKI := map[kiKey]*expected{}
	get := func(k, iters int) (*expected, error) {
		want, ok := byKI[kiKey{k, iters}]
		if !ok {
			var err error
			want, err = c.expectedAt(k, iters)
			if err != nil {
				return nil, err
			}
			byKI[kiKey{k, iters}] = want
		}
		return want, nil
	}
	for _, cl := range c.cells() {
		want, err := get(cl.k, cl.iters)
		if err != nil {
			return err
		}
		got := c.counters[cl]

		// BL: exact equality with the reference walker's profile. This
		// is both the cross-validation of the BL substrate and, at
		// k = 0, the OL-0 == BL identity.
		for f := range c.tr.BL {
			if msg := diffMaps(got.BL[f], c.tr.BL[f]); msg != "" {
				c.violate("counters/bl", cl, "func %d: %s", f, msg)
			}
		}
		if msg := diffMaps(got.Loop, want.loop); msg != "" {
			c.violate("counters/loop", cl, "%s", msg)
		}
		if msg := diffMaps(got.TypeI, want.t1); msg != "" {
			c.violate("counters/t1", cl, "%s", msg)
		}
		if msg := diffMaps(got.TypeII, want.t2); msg != "" {
			c.violate("counters/t2", cl, "%s", msg)
		}
		if msg := diffMaps(got.Calls, c.tr.Calls); msg != "" {
			c.violate("counters/calls", cl, "%s", msg)
		}
		if cl.iters > 2 {
			want2, err := get(cl.k, 2)
			if err != nil {
				return err
			}
			if msg := diffMaps(foldLoop(got.Loop), want2.loop); msg != "" {
				c.violate("counters/fold", cl, "first-crossing projection: %s", msg)
			}
		}
		c.checkConservation(cl, got)
	}
	return nil
}

// foldLoop projects loop counters onto their first crossing — the same
// reduction internal/estimate applies to widened profiles.
func foldLoop(in map[profile.LoopKey]uint64) map[profile.LoopKey]uint64 {
	out := make(map[profile.LoopKey]uint64, len(in))
	for k, n := range in {
		fk := k.FirstCrossing()
		out[fk] = profile.SatAdd(out[fk], n)
	}
	return out
}

// checkConservation validates the aggregation identities that tie the OL
// counter families back to coarser ground truth: summed out, the fine
// counters must reproduce the call counts and backedge-crossing counts
// exactly (this is what makes BL frequencies derivable from OL counters).
func (c *checker) checkConservation(cl cell, got *profile.Counters) {
	t1Sum := map[profile.CallKey]uint64{}
	for k, n := range got.TypeI {
		t1Sum[profile.CallKey{Caller: k.Caller, Site: k.Site, Callee: k.Callee}] += n
	}
	t2Sum := map[profile.CallKey]uint64{}
	for k, n := range got.TypeII {
		t2Sum[profile.CallKey{Caller: k.Caller, Site: k.Site, Callee: k.Callee}] += n
	}
	for ck, calls := range c.tr.Calls {
		if t1Sum[ck] != calls {
			c.violate("conserve/t1", cl,
				"edge %+v: Type I mass %d != %d calls", ck, t1Sum[ck], calls)
		}
		if t2Sum[ck] != calls {
			c.violate("conserve/t2", cl,
				"edge %+v: Type II mass %d != %d calls", ck, t2Sum[ck], calls)
		}
	}
	type loopID struct{ f, l int }
	loopSum := map[loopID]uint64{}
	for k, n := range got.Loop {
		loopSum[loopID{k.Func, k.Loop}] += n
	}
	crossings := map[loopID]uint64{}
	for adj, n := range c.tr.LoopAdj {
		crossings[loopID{adj.Func, adj.Loop}] += n
	}
	for id, want := range crossings {
		if loopSum[id] != want {
			c.violate("conserve/loop", cl,
				"func %d loop %d: OL mass %d != %d backedge crossings", id.f, id.l, loopSum[id], want)
		}
	}
	for id, got := range loopSum {
		if crossings[id] == 0 && got != 0 {
			c.violate("conserve/loop", cl,
				"func %d loop %d: OL mass %d but no backedge crossings", id.f, id.l, got)
		}
	}
}

// checkStores validates that every (store, engine) combination materialized
// identical canonical counters at every degree. With both engines
// configured this is the tree-vs-vm differential check: the fused-probe
// bytecode engine must reproduce the listener-dispatched reference
// key-for-key.
func (c *checker) checkStores() {
	for _, k := range c.cfg.Ks {
		for _, iters := range c.cfg.Iters {
			ref := cell{k: k, iters: iters, kind: c.cfg.Stores[0], eng: c.cfg.Engines[0]}
			want := c.counters[ref]
			for _, eng := range c.cfg.Engines {
				for _, kind := range c.cfg.Stores {
					cl := cell{k: k, iters: iters, kind: kind, eng: eng}
					if cl == ref {
						continue
					}
					if !reflect.DeepEqual(want, c.counters[cl]) {
						c.violate("stores", cl,
							"canonical counters diverge from %s store on %s engine",
							ref.kind, ref.eng)
					}
				}
			}
		}
	}
}

// checkSerialization validates that (a) every (store, engine) combination
// serializes byte-identically at every degree and (b) serialization
// round-trips losslessly: deserializing and re-serializing reproduces the
// exact bytes.
func (c *checker) checkSerialization() {
	for _, k := range c.cfg.Ks {
		for _, iters := range c.cfg.Iters {
			ref := cell{k: k, iters: iters, kind: c.cfg.Stores[0], eng: c.cfg.Engines[0]}
			want := c.serialized[ref]
			for _, eng := range c.cfg.Engines {
				for _, kind := range c.cfg.Stores {
					cl := cell{k: k, iters: iters, kind: kind, eng: eng}
					if cl == ref {
						continue
					}
					if !bytes.Equal(want, c.serialized[cl]) {
						c.violate("serialize/stores", cl,
							"serialized form diverges from %s store on %s engine",
							ref.kind, ref.eng)
					}
				}
			}
		}
	}
	for _, cl := range c.cells() {
		raw := c.serialized[cl]
		rt, err := profile.ReadCounters(bytes.NewReader(raw))
		if err != nil {
			c.violate("serialize/roundtrip", cl, "ReadCounters: %v", err)
			continue
		}
		var again bytes.Buffer
		if err := rt.Serialize(&again); err != nil {
			c.violate("serialize/roundtrip", cl, "re-serialize: %v", err)
			continue
		}
		if !bytes.Equal(raw, again.Bytes()) {
			c.violate("serialize/roundtrip", cl,
				"round-tripped bytes differ (%d vs %d bytes)", len(raw), len(again.Bytes()))
		}
		if !reflect.DeepEqual(rt, c.counters[cl]) {
			c.violate("serialize/roundtrip", cl,
				"round-tripped counters differ from originals")
		}
	}
}

// checkEstimates validates the flow equations at every configured mode:
// definite <= real <= potential for every loop (aggregate and per pair) and
// every call edge (Type I and Type II aggregates), at the BL-only baseline
// (k = -1) and at every profiled degree — and that the bounds tighten
// monotonically as k grows.
func (c *checker) checkEstimates() error {
	ks := append([]int{-1}, c.cfg.Ks...)
	pairs, err := c.tr.LoopPairs()
	if err != nil {
		return fmt.Errorf("oracle: loop pairs: %w", err)
	}
	flows, err := c.tr.Flows()
	if err != nil {
		return fmt.Errorf("oracle: flows: %w", err)
	}
	for _, mode := range c.cfg.Modes {
		if err := c.checkLoopEstimates(ks, mode, pairs); err != nil {
			return err
		}
		if err := c.checkInterEstimates(ks, mode); err != nil {
			return err
		}
	}
	// Sanity tie between the two ground-truth derivations: the per-pair
	// loop frequencies must sum to the Flows() loop total.
	var loopTotal uint64
	for _, n := range pairs {
		loopTotal += n
	}
	if loopTotal != flows.Loop {
		c.violate("estimate/flows", cell{},
			"LoopPairs total %d != Flows().Loop %d", loopTotal, flows.Loop)
	}
	return nil
}

func (c *checker) checkLoopEstimates(ks []int, mode estimate.Mode, pairs map[trace.LoopPairKey]uint64) error {
	for _, fi := range c.p.Info.Funcs {
		for _, li := range fi.Loops {
			var realTotal int64
			perPair := map[[2]int]int64{}
			for pk, n := range pairs {
				if pk.Func == fi.Index && pk.Loop == li.Index {
					perPair[[2]int{pk.I, pk.J}] = int64(n)
					realTotal += int64(n)
				}
			}
			prevDef, prevPot := int64(-1), int64(-1)
			for _, k := range ks {
				counters := c.at(maxInt(k, c.cfg.Ks[0]))
				res, err := estimate.Loop(fi, li, counters.BL[fi.Index], counters.Loop, k, mode)
				if err != nil {
					return fmt.Errorf("oracle: loop estimate func %d loop %d k=%d: %w",
						fi.Index, li.Index, k, err)
				}
				def, pot := res.Definite(), res.Potential()
				if def > realTotal || pot < realTotal {
					c.violate("estimate/bracket", cell{k: k},
						"%s loop %d mode=%s: flow [%d,%d] misses real %d",
						fi.Fn.Name, li.Index, mode, def, pot, realTotal)
				}
				for pair, real := range perPair {
					v := res.Var(pair[0], pair[1])
					if res.Res.Lower[v] > real || res.Res.Upper[v] < real {
						c.violate("estimate/bracket", cell{k: k},
							"%s loop %d mode=%s pair(%d,%d): [%d,%d] misses %d",
							fi.Fn.Name, li.Index, mode, pair[0], pair[1],
							res.Res.Lower[v], res.Res.Upper[v], real)
					}
				}
				if prevDef >= 0 && (def < prevDef || pot > prevPot) {
					c.violate("estimate/monotone", cell{k: k},
						"%s loop %d mode=%s: bounds widened (def %d->%d, pot %d->%d)",
						fi.Fn.Name, li.Index, mode, prevDef, def, prevPot, pot)
				}
				prevDef, prevPot = def, pot
			}
		}
	}
	return nil
}

func (c *checker) checkInterEstimates(ks []int, mode estimate.Mode) error {
	edges := make([]profile.CallKey, 0, len(c.tr.Calls))
	for ck := range c.tr.Calls {
		edges = append(edges, ck)
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Callee < b.Callee
	})
	for _, ck := range edges {
		calls := c.tr.Calls[ck]
		caller := c.p.Info.Funcs[ck.Caller]
		cs := caller.CallSites[ck.Site]
		var realT1, realT2 int64
		for adj, n := range c.tr.T1 {
			if adj.Caller == ck.Caller && adj.Site == ck.Site && adj.Callee == ck.Callee {
				realT1 += int64(n)
			}
		}
		for adj, n := range c.tr.T2 {
			if adj.Caller == ck.Caller && adj.Site == ck.Site && adj.Callee == ck.Callee {
				realT2 += int64(n)
			}
		}
		var prevDef1, prevPot1, prevDef2, prevPot2 int64 = -1, -1, -1, -1
		for _, k := range ks {
			counters := c.at(maxInt(k, c.cfg.Ks[0]))
			r1, err := estimate.TypeI(c.p.Info, caller, cs, ck.Callee,
				counters.BL[ck.Caller], counters.BL[ck.Callee], counters.TypeI, calls, k, mode)
			if err == estimate.ErrTooLarge {
				break // static size, independent of k: the edge is skipped at every degree
			}
			if err != nil {
				return fmt.Errorf("oracle: Type I estimate %+v k=%d: %w", ck, k, err)
			}
			def1, pot1 := r1.Definite(), r1.Potential()
			if def1 > realT1 || pot1 < realT1 {
				c.violate("estimate/bracket", cell{k: k},
					"T1 %+v mode=%s: [%d,%d] misses %d", ck, mode, def1, pot1, realT1)
			}
			if prevDef1 >= 0 && (def1 < prevDef1 || pot1 > prevPot1) {
				c.violate("estimate/monotone", cell{k: k},
					"T1 %+v mode=%s: bounds widened (def %d->%d, pot %d->%d)",
					ck, mode, prevDef1, def1, prevPot1, pot1)
			}
			prevDef1, prevPot1 = def1, pot1

			r2, err := estimate.TypeII(c.p.Info, caller, cs, ck.Callee,
				counters.BL[ck.Caller], counters.BL[ck.Callee], counters.TypeII, calls, k, mode)
			if err == estimate.ErrTooLarge {
				break
			}
			if err != nil {
				return fmt.Errorf("oracle: Type II estimate %+v k=%d: %w", ck, k, err)
			}
			def2, pot2 := r2.Definite(), r2.Potential()
			if def2 > realT2 || pot2 < realT2 {
				c.violate("estimate/bracket", cell{k: k},
					"T2 %+v mode=%s: [%d,%d] misses %d", ck, mode, def2, pot2, realT2)
			}
			if prevDef2 >= 0 && (def2 < prevDef2 || pot2 > prevPot2) {
				c.violate("estimate/monotone", cell{k: k},
					"T2 %+v mode=%s: bounds widened (def %d->%d, pot %d->%d)",
					ck, mode, prevDef2, def2, prevPot2, pot2)
			}
			prevDef2, prevPot2 = def2, pot2
		}
	}
	return nil
}

// checkParallel re-runs the whole matrix concurrently through the worker
// pool and byte-compares every cell against the sequential sweep: the
// parallel sweep mode must be observationally identical.
func (c *checker) checkParallel() error {
	pool := c.cfg.Pool
	if pool == nil {
		pool = c.p.Pool()
	}
	cells := c.cells()
	raws := make([][]byte, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, cl := range cells {
		wg.Add(1)
		go func(i int, cl cell) {
			defer wg.Done()
			pool.Do(func() {
				_, raw, err := c.run(cl)
				raws[i], errs[i] = raw, err
			})
		}(i, cl)
	}
	wg.Wait()
	for i, cl := range cells {
		if errs[i] != nil {
			return errs[i]
		}
		c.res.Runs++
		if !bytes.Equal(raws[i], c.serialized[cl]) {
			c.violate("parallel", cl,
				"parallel-sweep counters diverge from sequential sweep")
		}
	}
	return nil
}

// diffMaps reports the first key-for-key mismatch between two counter maps
// ("" when identical).
func diffMaps[K comparable](got, want map[K]uint64) string {
	for k, w := range want {
		if got[k] != w {
			return fmt.Sprintf("key %+v: got %d, want %d", k, got[k], w)
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok && g != 0 {
			return fmt.Sprintf("unexpected key %+v: got %d, want 0", k, g)
		}
	}
	return ""
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
