// Package oracle is the differential-testing subsystem: given a compiled
// program and an input seed, it derives ground truth with the
// interpreter-driven tracer, replays the program through the instrumented
// pipeline across degrees, window widths, counter stores, and sweep modes,
// and checks a
// fixed battery of metamorphic invariants connecting the two. It is the
// correctness gate every performance-oriented change to the profiling stack
// must pass: the invariants encode the paper's central numeric claims
// (instrumented OL-k counters agree with what actually executed; the flow
// equations bracket real interesting-path flow between definite and
// potential estimates; precision is monotone in k), plus the repo's own
// serialization and store-equivalence contracts.
//
// The package exposes one entry point per granularity: Check (a prepared
// pipeline), CheckSource (source text), and CheckSeed (a randprog generator
// seed). Tests and the native fuzz targets layer on top.
package oracle

import (
	"bytes"
	"fmt"
	"sort"

	"pathprof/internal/estimate"
	"pathprof/internal/instrument"
	"pathprof/internal/interp"
	"pathprof/internal/pipeline"
	"pathprof/internal/profile"
	"pathprof/internal/randprog"
	"pathprof/internal/trace"
)

// Checks selects which invariant families a Check run validates. The zero
// value means ChecksAll; fuzz targets narrow to one family each so every
// fuzz execution stays fast and failures point at one invariant.
type Checks uint

const (
	// CheckCounters validates instrumented counters against trace-derived
	// expectations key-for-key (BL, loop, Type I, Type II, calls), the
	// OL-0 == BL identity, and the conservation sums.
	CheckCounters Checks = 1 << iota
	// CheckStores validates nested-store / flat-store equivalence.
	CheckStores
	// CheckEstimates validates bound bracketing (definite <= real <=
	// potential) and monotone tightening in k, for both constraint modes.
	CheckEstimates
	// CheckSerialization validates byte-stable serialization across
	// stores and lossless round-trips.
	CheckSerialization
	// CheckParallel re-runs the whole degree x store matrix concurrently
	// through a worker pool and byte-compares against the sequential
	// sweep.
	CheckParallel
	// CheckMerge validates the aggregation-service invariant: splitting a
	// workload into independently profiled chunks and folding the chunk
	// snapshots through internal/merge serializes byte-identically to the
	// unsplit concatenated run, for every store layout.
	CheckMerge

	// ChecksAll enables the full battery.
	ChecksAll = CheckCounters | CheckStores | CheckEstimates | CheckSerialization | CheckParallel | CheckMerge
)

// Config bounds and selects one oracle run.
type Config struct {
	// Ks are the profiled degrees (default {0, 1, 2}).
	Ks []int
	// Iters are the profiled multi-iteration window widths (default
	// {2, 3, 4}: the classic two-iteration setting plus every widened
	// width the runtime ring supports).
	Iters []int
	// Stores are the counter-store layouts (default nested, flat, and
	// arena).
	Stores []profile.StoreKind
	// Engines are the execution engines (default tree, vm, regvm, pgo:
	// the listener-dispatched reference interpreter is the comparison
	// baseline the fused-probe bytecode engine, the register machine, and
	// the register machine under self-trained profile-guided layout must
	// all match).
	Engines []pipeline.Engine
	// Modes are the estimation constraint modes (default Paper and
	// Extended).
	Modes []estimate.Mode
	// Checks selects invariant families (zero value = ChecksAll).
	Checks Checks
	// MaxTraceSteps skips programs whose uninstrumented run exceeds it
	// (default randprog.MaxOracleSteps).
	MaxTraceSteps int64
	// MaxRunSteps is the interpreter hard limit (default
	// randprog.MaxRunSteps).
	MaxRunSteps int64
	// Pool is the worker pool the parallel sweep draws from (nil = the
	// process-wide shared pool).
	Pool *pipeline.Pool
}

func (c Config) withDefaults() Config {
	if len(c.Ks) == 0 {
		c.Ks = []int{0, 1, 2}
	}
	if len(c.Iters) == 0 {
		c.Iters = []int{2, 3, 4}
	}
	if len(c.Stores) == 0 {
		c.Stores = []profile.StoreKind{profile.StoreNested, profile.StoreFlat, profile.StoreArena}
	}
	if len(c.Engines) == 0 {
		c.Engines = []pipeline.Engine{pipeline.EngineTree, pipeline.EngineVM, pipeline.EngineReg, pipeline.EnginePGO}
	}
	if len(c.Modes) == 0 {
		c.Modes = []estimate.Mode{estimate.Paper, estimate.Extended}
	}
	if c.Checks == 0 {
		c.Checks = ChecksAll
	}
	if c.MaxTraceSteps == 0 {
		c.MaxTraceSteps = randprog.MaxOracleSteps
	}
	if c.MaxRunSteps == 0 {
		c.MaxRunSteps = randprog.MaxRunSteps
	}
	ks := append([]int(nil), c.Ks...)
	sort.Ints(ks)
	c.Ks = ks
	iters := append([]int(nil), c.Iters...)
	sort.Ints(iters)
	c.Iters = iters
	return c
}

// Violation is one failed invariant. Violations carry enough detail to
// reproduce: the invariant name, the (k, iters, store, engine) cell of the
// run matrix, and a human-readable diff fragment.
type Violation struct {
	Invariant string
	K         int
	Iters     int
	Store     profile.StoreKind
	Engine    pipeline.Engine
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] k=%d iters=%d store=%s engine=%s: %s",
		v.Invariant, v.K, v.Iters, v.Store, v.Engine, v.Detail)
}

// Result is the outcome of one oracle run.
type Result struct {
	// Skipped reports that the program exceeded MaxTraceSteps and the
	// battery did not run (Violations is empty and meaningless).
	Skipped bool
	// Steps is the uninstrumented step count of the ground-truth run.
	Steps int64
	// Runs counts the instrumented executions performed.
	Runs int
	// Violations lists every failed invariant (empty on a clean pass).
	Violations []Violation
}

// Ok reports a fully validated, violation-free run.
func (r *Result) Ok() bool { return !r.Skipped && len(r.Violations) == 0 }

// Err renders the violations as one error (nil when Ok or Skipped).
func (r *Result) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "oracle: %d invariant violation(s):", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return fmt.Errorf("%s", b.String())
}

// CheckSeed runs the battery on the canonical program of one randprog
// generator seed, with interpreter seed == generator seed (the harnesses'
// convention).
func CheckSeed(genSeed int64, cfg Config) (*Result, error) {
	return CheckSource(randprog.SeedSource(genSeed), uint64(genSeed), cfg)
}

// CheckSource compiles source and runs the battery.
func CheckSource(source string, seed uint64, cfg Config) (*Result, error) {
	p, err := pipeline.Compile(source, pipeline.Options{})
	if err != nil {
		return nil, err
	}
	return Check(p, seed, cfg)
}

// Check runs the invariant battery against an already-built pipeline.
// Infrastructure failures (compile, analyze, run errors) come back as the
// error; invariant failures come back in Result.Violations so a harness can
// report all of them at once.
func Check(p *pipeline.Pipeline, seed uint64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	c := &checker{p: p, seed: seed, cfg: cfg, res: &Result{}}

	if err := c.ground(); err != nil {
		return nil, err
	}
	if c.res.Skipped {
		return c.res, nil
	}
	if err := c.sweep(); err != nil {
		return nil, err
	}
	if cfg.Checks&CheckCounters != 0 {
		if err := c.checkCounters(); err != nil {
			return nil, err
		}
	}
	if cfg.Checks&CheckStores != 0 {
		c.checkStores()
	}
	if cfg.Checks&CheckSerialization != 0 {
		c.checkSerialization()
	}
	if cfg.Checks&CheckEstimates != 0 {
		if err := c.checkEstimates(); err != nil {
			return nil, err
		}
	}
	if cfg.Checks&CheckParallel != 0 {
		if err := c.checkParallel(); err != nil {
			return nil, err
		}
	}
	if cfg.Checks&CheckMerge != 0 {
		if err := c.checkMerge(); err != nil {
			return nil, err
		}
	}
	return c.res, nil
}

// cell is one (degree, window width, store, engine) coordinate of the run
// matrix.
type cell struct {
	k     int
	iters int
	kind  profile.StoreKind
	eng   pipeline.Engine
}

type checker struct {
	p    *pipeline.Pipeline
	seed uint64
	cfg  Config
	res  *Result

	tr *trace.Tracer
	// counters and serialized hold the sequential sweep's outcome per
	// matrix cell.
	counters   map[cell]*profile.Counters
	serialized map[cell][]byte

	// tamperChunk, when set, corrupts chunk i's counters before the merge
	// fold — the self-test hook proving the merge invariant has teeth.
	tamperChunk func(i int, c *profile.Counters)
}

func (c *checker) violate(inv string, cl cell, format string, args ...any) {
	c.res.Violations = append(c.res.Violations, Violation{
		Invariant: inv, K: cl.k, Iters: cl.iters, Store: cl.kind, Engine: cl.eng,
		Detail: fmt.Sprintf(format, args...),
	})
}

// ground performs the ground-truth tracer run.
func (c *checker) ground() error {
	m := interp.New(c.p.Prog, c.seed)
	m.MaxSteps = c.cfg.MaxRunSteps
	tr := trace.NewTracer(c.p.Info, m)
	if err := m.Run(); err != nil {
		return fmt.Errorf("oracle: ground-truth run: %w", err)
	}
	if tr.Err != nil {
		return fmt.Errorf("oracle: tracer: %w", tr.Err)
	}
	c.res.Steps = m.Steps
	if m.Steps > c.cfg.MaxTraceSteps {
		c.res.Skipped = true
		return nil
	}
	c.tr = tr
	return nil
}

// run executes one instrumented run at matrix cell cl through the shared
// pipeline artifact cache (plans, and compiled bytecode on the VM engine),
// returning its counters and serialized form.
func (c *checker) run(cl cell) (*profile.Counters, []byte, error) {
	cfg := instrument.Config{K: cl.k, Loops: true, Interproc: true, Iters: cl.iters}
	store := profile.NewStore(cl.kind, c.p.Info, cfg.EffIters())
	r, err := c.p.ExecuteStore(cl.eng, cfg, c.seed, nil, store, c.cfg.MaxRunSteps)
	if err != nil {
		return nil, nil, fmt.Errorf("oracle: run k=%d iters=%d store=%s engine=%s: %w",
			cl.k, cl.iters, cl.kind, cl.eng, err)
	}
	var buf bytes.Buffer
	if err := r.Counters.Serialize(&buf); err != nil {
		return nil, nil, fmt.Errorf("oracle: serialize k=%d iters=%d store=%s engine=%s: %w",
			cl.k, cl.iters, cl.kind, cl.eng, err)
	}
	return r.Counters, buf.Bytes(), nil
}

// sweep fills the run matrix sequentially.
func (c *checker) sweep() error {
	c.counters = map[cell]*profile.Counters{}
	c.serialized = map[cell][]byte{}
	for _, cl := range c.cells() {
		counters, raw, err := c.run(cl)
		if err != nil {
			return err
		}
		c.counters[cl] = counters
		c.serialized[cl] = raw
		c.res.Runs++
	}
	return nil
}

func (c *checker) cells() []cell {
	var out []cell
	for _, k := range c.cfg.Ks {
		for _, iters := range c.cfg.Iters {
			for _, eng := range c.cfg.Engines {
				for _, kind := range c.cfg.Stores {
					out = append(out, cell{k: k, iters: iters, kind: kind, eng: eng})
				}
			}
		}
	}
	return out
}

// at returns the sequential counters of degree k under the narrowest
// configured window width and the first configured store and engine (all
// store/engine combinations are proven identical by checkStores, and
// estimates are invariant in the width by the counters/fold check).
func (c *checker) at(k int) *profile.Counters {
	return c.counters[cell{k: k, iters: c.cfg.Iters[0], kind: c.cfg.Stores[0], eng: c.cfg.Engines[0]}]
}
