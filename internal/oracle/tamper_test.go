package oracle

// White-box self-test: the battery must have teeth. A checker whose run
// matrix is corrupted after the sweep must report violations in every
// family the corruption touches — otherwise the oracle would pass builds it
// should fail.

import (
	"testing"

	"pathprof/internal/pipeline"
	"pathprof/internal/profile"
	"pathprof/internal/randprog"
)

// tamperedChecker builds a checker over a healthy harvested program, runs
// the ground-truth pass and the sequential sweep, then hands the matrix to
// the caller for corruption.
func tamperedChecker(t *testing.T) *checker {
	t.Helper()
	seeds, err := randprog.HarvestCorpus(1, randprog.MaxOracleSteps)
	if err != nil {
		t.Fatal(err)
	}
	genSeed := seeds[0].GenSeed
	p, err := pipeline.Compile(randprog.SeedSource(genSeed), pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := &checker{p: p, seed: uint64(genSeed), cfg: Config{}.withDefaults(), res: &Result{}}
	if err := c.ground(); err != nil {
		t.Fatal(err)
	}
	if c.res.Skipped {
		t.Fatal("harvested seed must not skip")
	}
	if err := c.sweep(); err != nil {
		t.Fatal(err)
	}
	return c
}

func firstBLKey(c *profile.Counters) (int, int64) {
	for f, m := range c.BL {
		for id := range m {
			return f, id
		}
	}
	return -1, -1
}

func TestBatteryDetectsCounterCorruption(t *testing.T) {
	c := tamperedChecker(t)
	// Drop one BL increment from a single cell: the counter invariant
	// must fire for that cell.
	victim := cell{k: c.cfg.Ks[0], iters: c.cfg.Iters[0], kind: c.cfg.Stores[0]}
	f, id := firstBLKey(c.counters[victim])
	if f < 0 {
		t.Fatal("no BL counters to corrupt")
	}
	c.counters[victim].BL[f][id]++
	if err := c.checkCounters(); err != nil {
		t.Fatal(err)
	}
	if len(c.res.Violations) == 0 {
		t.Fatal("corrupted BL counter went undetected")
	}
	for _, v := range c.res.Violations {
		if v.Invariant == "counters/bl" {
			return
		}
	}
	t.Fatalf("no counters/bl violation among: %v", c.res.Violations)
}

func TestBatteryDetectsStoreDivergence(t *testing.T) {
	c := tamperedChecker(t)
	// Corrupt only the flat-store cell at one degree: store equivalence
	// must fire.
	victim := cell{k: c.cfg.Ks[0], iters: c.cfg.Iters[0], kind: profile.StoreFlat}
	f, id := firstBLKey(c.counters[victim])
	if f < 0 {
		t.Fatal("no BL counters to corrupt")
	}
	c.counters[victim].BL[f][id] += 7
	c.checkStores()
	if len(c.res.Violations) == 0 {
		t.Fatal("store divergence went undetected")
	}
	if c.res.Violations[0].Invariant != "stores" {
		t.Fatalf("unexpected violation: %v", c.res.Violations[0])
	}
}

func TestBatteryDetectsSerializationDrift(t *testing.T) {
	c := tamperedChecker(t)
	// Corrupt the serialized bytes of one cell: both the cross-store
	// byte comparison and the round-trip must fire.
	victim := cell{k: c.cfg.Ks[0], iters: c.cfg.Iters[0], kind: profile.StoreFlat}
	raw := append([]byte(nil), c.serialized[victim]...)
	raw[len(raw)/2] ^= 0xff
	c.serialized[victim] = raw
	c.checkSerialization()
	if len(c.res.Violations) == 0 {
		t.Fatal("serialization drift went undetected")
	}
}

func TestBatteryDetectsParallelDivergence(t *testing.T) {
	c := tamperedChecker(t)
	// Corrupt the sequential baseline of one cell: the parallel re-run
	// (which is healthy) must mismatch it.
	victim := cell{k: c.cfg.Ks[0], iters: c.cfg.Iters[0], kind: c.cfg.Stores[0]}
	c.serialized[victim] = []byte("corrupted baseline")
	if err := c.checkParallel(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range c.res.Violations {
		if v.Invariant == "parallel" {
			found = true
		}
	}
	if !found {
		t.Fatalf("parallel divergence went undetected: %v", c.res.Violations)
	}
}

// iterCorruptionSource is a handcrafted program whose main loop runs many
// consecutive iterations, guaranteeing the widened (iters > 2) cells hold
// multi-crossing loop keys to corrupt.
const iterCorruptionSource = `func main() {
	var s = 0;
	for (var i = 0; i < 9; i = i + 1) {
		if (rand(2) == 0) {
			s = s + i;
		} else {
			s = s - 1;
		}
	}
	print(s);
}
`

// TestBatteryDetectsIterCorruption proves the multi-iteration invariants
// have teeth: corrupting a multi-crossing key in a widened cell must fire
// both the per-width counter check (against the trace-derived chain
// expectations) and the first-crossing fold check.
func TestBatteryDetectsIterCorruption(t *testing.T) {
	p, err := pipeline.Compile(iterCorruptionSource, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := &checker{p: p, seed: 7, cfg: Config{}.withDefaults(), res: &Result{}}
	if err := c.ground(); err != nil {
		t.Fatal(err)
	}
	if c.res.Skipped {
		t.Fatal("handcrafted loop program must not skip")
	}
	if err := c.sweep(); err != nil {
		t.Fatal(err)
	}
	victim := cell{k: c.cfg.Ks[len(c.cfg.Ks)-1], iters: 3, kind: c.cfg.Stores[0]}
	var key profile.LoopKey
	found := false
	for lk := range c.counters[victim].Loop {
		if lk.NumCrossings() > 1 {
			key, found = lk, true
			break
		}
	}
	if !found {
		t.Fatal("no multi-crossing loop key in the iters=3 cell to corrupt")
	}
	c.counters[victim].Loop[key] += 5
	if err := c.checkCounters(); err != nil {
		t.Fatal(err)
	}
	var gotLoop, gotFold bool
	for _, v := range c.res.Violations {
		switch v.Invariant {
		case "counters/loop":
			gotLoop = true
		case "counters/fold":
			gotFold = true
		}
	}
	if !gotLoop || !gotFold {
		t.Fatalf("iters corruption detection: counters/loop=%v counters/fold=%v among %v",
			gotLoop, gotFold, c.res.Violations)
	}
}

func TestBatteryDetectsMergeDivergence(t *testing.T) {
	c := tamperedChecker(t)
	// Inflate one BL counter in the middle chunk's snapshot before the
	// fold: the merged profile must stop matching the concatenated run.
	c.tamperChunk = func(i int, cc *profile.Counters) {
		if i != 1 {
			return
		}
		f, id := firstBLKey(cc)
		if f < 0 {
			t.Fatal("no BL counters to corrupt")
		}
		cc.BL[f][id] += 3
	}
	if err := c.checkMerge(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range c.res.Violations {
		if v.Invariant == "merge" {
			found = true
		}
	}
	if !found {
		t.Fatalf("merge divergence went undetected: %v", c.res.Violations)
	}
}
