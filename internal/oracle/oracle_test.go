package oracle_test

import (
	"fmt"
	"strings"
	"testing"

	"pathprof/internal/oracle"
	"pathprof/internal/pipeline"
	"pathprof/internal/profile"
	"pathprof/internal/randprog"
)

// batterySeeds is the number of fully validated randprog programs the
// battery must cover (the acceptance floor of the oracle subsystem).
const batterySeeds = 40

// TestOracleBattery runs the complete metamorphic invariant battery —
// counter equivalence against trace ground truth, OL-0 == BL, store and
// engine equivalence (tree vs vm vs regvm vs pgo layout), first-crossing
// folds of widened profiles, bound bracketing and monotone tightening,
// serialization round-trips, and sequential/parallel sweep identity — over
// the harvested randprog corpus at k in {0, 1, 2} and window widths iters
// in {2, 3, 4} under all three counter stores and all four engines.
func TestOracleBattery(t *testing.T) {
	target := batterySeeds
	if testing.Short() {
		target = 8
	}
	seeds, err := randprog.HarvestCorpus(target, randprog.MaxOracleSteps)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seeds {
		s := s
		t.Run(fmt.Sprintf("seed%d", s.GenSeed), func(t *testing.T) {
			t.Parallel()
			res, err := oracle.CheckSeed(s.GenSeed, oracle.Config{})
			if err != nil {
				t.Fatalf("seed %d: %v\n--- source ---\n%s", s.GenSeed, err, randprog.SeedSource(s.GenSeed))
			}
			if res.Skipped {
				t.Fatalf("seed %d: harvested (steps=%d) but oracle skipped at %d steps",
					s.GenSeed, s.Steps, res.Steps)
			}
			if err := res.Err(); err != nil {
				t.Fatalf("seed %d: %v\n--- source ---\n%s", s.GenSeed, err, randprog.SeedSource(s.GenSeed))
			}
			// 3 degrees x 3 widths x 3 stores x 4 engines, sequential +
			// parallel sweeps, plus the merge cell's 3 widths x 3 stores
			// x 3 chunks x (split + concatenated) runs.
			if want := 2*(3*3*3*4) + 3*3*3*2; res.Runs != want {
				t.Fatalf("seed %d: %d instrumented runs, want %d", s.GenSeed, res.Runs, want)
			}
		})
	}
}

// sparseBoundarySource builds a program whose main has more than
// profile.DenseBLLimit (2^16) static Ball-Larus paths: 17 consecutive
// if-else diamonds give 2^17 paths, so the flat store must refuse the dense
// array and route every BL increment through the sparse overlay.
func sparseBoundarySource() string {
	var b strings.Builder
	b.WriteString("var gv0;\n\nfunc main() {\n\tvar x = 0;\n")
	for i := 0; i < 17; i++ {
		fmt.Fprintf(&b, "\tif (rand(2) == 0) { x = x + %d; } else { x = x - 1; }\n", i+1)
	}
	b.WriteString("\tprint(x);\n}\n")
	return b.String()
}

// TestOracleSparseOverlayBoundary is the cross-store equivalence check at
// the sparse overlay boundary: on a program with > 2^16 BL paths the flat
// store falls back to its sparse map, and the oracle battery must still
// prove it identical to the nested store, byte-for-byte.
func TestOracleSparseOverlayBoundary(t *testing.T) {
	src := sparseBoundarySource()
	p, err := pipeline.Compile(src, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if total := p.Info.Funcs[0].DAG.Total(); total <= profile.DenseBLLimit {
		t.Fatalf("boundary program has only %d BL paths, need > %d", total, profile.DenseBLLimit)
	}
	res, err := oracle.Check(p, 12345, oracle.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped {
		t.Fatalf("boundary program skipped at %d steps", res.Steps)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestOracleConfigSubsets exercises the narrowed check configurations the
// fuzz targets use: each family must run (and pass) in isolation.
func TestOracleConfigSubsets(t *testing.T) {
	seeds, err := randprog.HarvestCorpus(1, randprog.MaxOracleSteps)
	if err != nil {
		t.Fatal(err)
	}
	genSeed := seeds[0].GenSeed
	for name, checks := range map[string]oracle.Checks{
		"counters":  oracle.CheckCounters,
		"stores":    oracle.CheckStores,
		"estimates": oracle.CheckEstimates,
		"serialize": oracle.CheckSerialization,
		"parallel":  oracle.CheckParallel,
	} {
		t.Run(name, func(t *testing.T) {
			res, err := oracle.CheckSeed(genSeed, oracle.Config{Checks: checks})
			if err != nil {
				t.Fatal(err)
			}
			if res.Skipped {
				t.Fatal("harvested seed must not skip")
			}
			if err := res.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
