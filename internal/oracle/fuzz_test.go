package oracle_test

// Native Go fuzz targets over the differential oracle. An input is a
// (generator-seed, interpreter-seed, degree) tuple — plus a window width
// for FuzzIters — decoded into a randprog
// program; the checked-in corpus under testdata/fuzz/ is harvested from the
// standard 60-seed randprog sweep (regenerate with
// `go run ./internal/oracle/gencorpus`). Run with, e.g.:
//
//	go test ./internal/oracle -run '^$' -fuzz '^FuzzPipeline$' -fuzztime 30s
//
// Each target narrows the battery to one invariant family so a fuzz
// execution stays fast and a crash names the broken invariant directly.

import (
	"testing"

	"pathprof/internal/oracle"
	"pathprof/internal/profile"
	"pathprof/internal/randprog"
)

// clampK folds an arbitrary fuzzed degree into the profiled range {0,1,2}.
func clampK(k int) int {
	return ((k % 3) + 3) % 3
}

// clampIters folds an arbitrary fuzzed window width into the supported
// range {2,3,4}.
func clampIters(iters int) int {
	return 2 + ((iters%3)+3)%3
}

// fuzzOracle decodes one fuzz input and runs the selected battery slice.
func fuzzOracle(t *testing.T, genSeed, interpSeed int64, cfg oracle.Config) {
	t.Helper()
	src := randprog.SeedSource(genSeed)
	res, err := oracle.CheckSource(src, uint64(interpSeed), cfg)
	if err != nil {
		t.Fatalf("gen=%d interp=%d: %v\n--- source ---\n%s", genSeed, interpSeed, err, src)
	}
	if res.Skipped {
		t.Skip("program exceeds the oracle step budget")
	}
	if err := res.Err(); err != nil {
		t.Fatalf("gen=%d interp=%d: %v\n--- source ---\n%s", genSeed, interpSeed, err, src)
	}
}

// FuzzPipeline cross-validates instrumented counters against the
// interpreter-driven trace, key for key, under both counter stores.
func FuzzPipeline(f *testing.F) {
	f.Add(int64(1), int64(1), 0)
	f.Add(int64(3), int64(3), 1)
	f.Add(int64(5), int64(7), 2)
	f.Fuzz(func(t *testing.T, genSeed, interpSeed int64, k int) {
		fuzzOracle(t, genSeed, interpSeed, oracle.Config{
			Ks:     []int{clampK(k)},
			Checks: oracle.CheckCounters | oracle.CheckStores,
		})
	})
}

// FuzzEstimateBounds validates that the flow equations bracket real
// interesting-path flow and tighten monotonically from the BL baseline
// through degree k.
func FuzzEstimateBounds(f *testing.F) {
	f.Add(int64(1), int64(1), 1)
	f.Add(int64(4), int64(4), 2)
	f.Add(int64(6), int64(2), 0)
	f.Fuzz(func(t *testing.T, genSeed, interpSeed int64, k int) {
		ks := []int{0, clampK(k)}
		if ks[1] == 0 {
			ks = ks[:1]
		}
		fuzzOracle(t, genSeed, interpSeed, oracle.Config{
			Ks:     ks,
			Stores: []profile.StoreKind{profile.StoreNested},
			Checks: oracle.CheckEstimates,
		})
	})
}

// FuzzSerializeRoundTrip validates byte-stable serialization across stores
// and lossless round-trips at degree k.
func FuzzSerializeRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(1), 0)
	f.Add(int64(2), int64(9), 2)
	f.Add(int64(8), int64(8), 1)
	f.Fuzz(func(t *testing.T, genSeed, interpSeed int64, k int) {
		fuzzOracle(t, genSeed, interpSeed, oracle.Config{
			Ks:     []int{clampK(k)},
			Checks: oracle.CheckSerialization,
		})
	})
}

// FuzzIters validates the multi-iteration axis: at window width iters the
// instrumented loop counters must match the trace-derived chain
// expectations key-for-key on every store and engine, and fold back onto
// the two-iteration profile at their first crossing.
func FuzzIters(f *testing.F) {
	f.Add(int64(1), int64(1), 1, 3)
	f.Add(int64(5), int64(2), 2, 4)
	f.Add(int64(3), int64(3), 0, 2)
	f.Fuzz(func(t *testing.T, genSeed, interpSeed int64, k, iters int) {
		widths := []int{2}
		if it := clampIters(iters); it != 2 {
			widths = append(widths, it)
		}
		fuzzOracle(t, genSeed, interpSeed, oracle.Config{
			Ks:     []int{clampK(k)},
			Iters:  widths,
			Checks: oracle.CheckCounters | oracle.CheckStores,
		})
	})
}

// FuzzMergeSplit validates the aggregation invariant: chunked runs folded
// through internal/merge serialize byte-identically to the concatenated
// run, at degree k across every store layout.
func FuzzMergeSplit(f *testing.F) {
	f.Add(int64(1), int64(1), 1)
	f.Add(int64(5), int64(2), 0)
	f.Add(int64(9), int64(9), 2)
	f.Fuzz(func(t *testing.T, genSeed, interpSeed int64, k int) {
		fuzzOracle(t, genSeed, interpSeed, oracle.Config{
			Ks:     []int{clampK(k)},
			Checks: oracle.CheckMerge,
		})
	})
}
