// Command gencorpus regenerates the checked-in fuzz seed corpus under
// internal/oracle/testdata/fuzz/ from the standard randprog sweep: it
// harvests the generator seeds whose programs fit the oracle step budget
// and writes one Go-fuzz corpus file per (target, seed), cycling the degree
// through {0, 1, 2} (and, for FuzzIters, the window width through
// {2, 3, 4}) so every target's corpus covers every profiled cell.
//
// Usage: go run ./internal/oracle/gencorpus [-n seedsPerTarget] [-dir root]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pathprof/internal/randprog"
)

func main() {
	n := flag.Int("n", 12, "corpus entries per fuzz target")
	dir := flag.String("dir", "internal/oracle/testdata/fuzz", "corpus root directory")
	flag.Parse()

	seeds, err := randprog.HarvestCorpus(*n, randprog.MaxOracleSteps)
	if err != nil {
		log.Fatal(err)
	}
	for _, target := range []string{"FuzzPipeline", "FuzzEstimateBounds", "FuzzSerializeRoundTrip", "FuzzMergeSplit", "FuzzIters"} {
		tdir := filepath.Join(*dir, target)
		if err := os.MkdirAll(tdir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, s := range seeds {
			body := fmt.Sprintf("go test fuzz v1\nint64(%d)\nint64(%d)\nint(%d)\n",
				s.GenSeed, s.GenSeed, i%3)
			if target == "FuzzIters" {
				// FuzzIters takes a fourth field, the window width,
				// cycled through {2, 3, 4}.
				body += fmt.Sprintf("int(%d)\n", 2+i%3)
			}
			name := filepath.Join(tdir, fmt.Sprintf("seed-%03d", s.GenSeed))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s: %d corpus files\n", tdir, len(seeds))
	}
}
