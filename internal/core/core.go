// Package core is the library's top-level API: it ties the language
// frontend, the static profile analysis, the instrumented runtime, the
// ground-truth tracer, and the estimators into a small surface that the
// command-line tools, the examples, and downstream users drive.
//
// The typical flow:
//
//	s, err := core.Open(source)
//	run, err := s.ProfileOL(seed, k)        // instrumented execution
//	est, err := s.Estimate(run)             // interesting-path bounds
//	fmt.Println(est.Summary())
//
// A Session is reusable across runs and degrees; all static analysis —
// CFGs, BL numberings, OL extension regions, instrumentation plans — is
// cached on its pipeline.ArtifactCache, so repeated runs at the same
// degree pay for plan construction once.
package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pathprof/internal/estimate"
	"pathprof/internal/instrument"
	"pathprof/internal/ir"
	"pathprof/internal/overhead"
	"pathprof/internal/pipeline"
	"pathprof/internal/profile"
	"pathprof/internal/trace"
)

// Session is a compiled and analyzed program ready for profiling.
type Session struct {
	Prog *ir.Program
	Info *profile.Info
	// Out receives the profiled program's print output (default: discard).
	Out io.Writer

	pipe *pipeline.Pipeline
}

// Open compiles source and runs the static profile analysis.
func Open(source string) (*Session, error) {
	return OpenOptions(source, pipeline.Options{})
}

// OpenOptions is Open with explicit pipeline options (limits, counter
// store layout, worker pool).
func OpenOptions(source string, opts pipeline.Options) (*Session, error) {
	p, err := pipeline.Compile(source, opts)
	if err != nil {
		return nil, err
	}
	return FromPipeline(p), nil
}

// OpenProgram wraps an already-lowered IR program (e.g. a bundled
// benchmark).
func OpenProgram(prog *ir.Program) (*Session, error) {
	p, err := pipeline.New(prog, pipeline.Options{})
	if err != nil {
		return nil, err
	}
	return FromPipeline(p), nil
}

// FromPipeline wraps an existing artifact cache in a Session, sharing its
// cached plans with every other user of the pipeline.
func FromPipeline(p *pipeline.Pipeline) *Session {
	return &Session{Prog: p.Prog, Info: p.Info, pipe: p}
}

// Pipeline exposes the session's artifact cache.
func (s *Session) Pipeline() *pipeline.Pipeline { return s.pipe }

// MaxDegree returns the largest useful overlap degree in the program.
func (s *Session) MaxDegree() int { return s.Info.MaxDegree() }

// Run is the outcome of one instrumented execution.
type Run struct {
	// K is the profiled degree (-1 = Ball-Larus only).
	K int
	// Iters is the multi-iteration window width the loop counters were
	// collected at (2 = the classic two-iteration setting).
	Iters int
	// Selection is the structure selection the run used (nil = all).
	Selection *profile.Selection
	// Counters holds every collected counter.
	Counters *profile.Counters
	// Overhead reports probe cost against base cost.
	Overhead overhead.Report
	// Steps is the number of executed basic blocks.
	Steps int64
}

// ProfileBL runs the program with Ball-Larus instrumentation only.
func (s *Session) ProfileBL(seed uint64) (*Run, error) { return s.profile(seed, -1) }

// ProfileBLChords is ProfileBL with the spanning-tree probe placement;
// weights, when non-nil, come from a prior run's counters so hot edges
// escape instrumentation.
func (s *Session) ProfileBLChords(seed uint64, weights *profile.Counters) (*Run, error) {
	return s.execute(instrument.Config{K: -1, ChordBL: true, ChordProfile: weights}, seed)
}

// ProfileOL runs the program with degree-k overlapping-path instrumentation
// (loop and interprocedural) on top of BL.
func (s *Session) ProfileOL(seed uint64, k int) (*Run, error) {
	return s.ProfileOLIters(seed, k, 2)
}

// ProfileOLIters is ProfileOL with an explicit multi-iteration window
// width: profiled loop paths span up to iters consecutive iterations
// (iters = 2 is exactly ProfileOL; see olpath.MaxIters for the ceiling).
func (s *Session) ProfileOLIters(seed uint64, k, iters int) (*Run, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: ProfileOL needs k >= 0 (use ProfileBL)")
	}
	return s.execute(instrument.Config{K: k, Loops: true, Interproc: true, Iters: iters}, seed)
}

// ProfileSelective is ProfileOL restricted to a structure selection
// (typically from SelectHot): only selected loops and call sites get
// overlapping-path probes; everything keeps Ball-Larus probes.
func (s *Session) ProfileSelective(seed uint64, k int, sel *profile.Selection) (*Run, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: ProfileSelective needs k >= 0")
	}
	return s.profileSel(seed, k, sel)
}

// SelectHot builds a hot-structure selection from a BL run, covering the
// given fraction of backedge crossings and calls.
func (s *Session) SelectHot(blRun *Run, coverage float64) (*profile.Selection, error) {
	return profile.SelectHot(s.Info, blRun.Counters, coverage)
}

func (s *Session) profile(seed uint64, k int) (*Run, error) {
	return s.profileSel(seed, k, nil)
}

func (s *Session) profileSel(seed uint64, k int, sel *profile.Selection) (*Run, error) {
	return s.execute(instrument.Config{K: k, Loops: k >= 0, Interproc: k >= 0, Selection: sel}, seed)
}

// execute routes one instrumented run through the pipeline's cached plans.
func (s *Session) execute(cfg instrument.Config, seed uint64) (*Run, error) {
	r, err := s.pipe.Execute(cfg, seed, s.Out)
	if err != nil {
		return nil, err
	}
	return &Run{K: r.K, Iters: r.Iters, Selection: r.Selection, Counters: r.Counters, Overhead: r.Overhead, Steps: r.Steps}, nil
}

// RunFromCounters wraps previously collected (e.g. deserialized) counters
// as a Run so they can feed estimation; overhead data is absent. iters is
// the window width the counters were collected at (values below 2 mean the
// classic two-iteration setting).
func RunFromCounters(k, iters int, c *profile.Counters) *Run {
	if iters < 2 {
		iters = 2
	}
	return &Run{K: k, Iters: iters, Counters: c}
}

// Trace runs the program under the ground-truth tracer (the WPP-equivalent
// collection: exact interesting-path frequencies and flow attribution).
func (s *Session) Trace(seed uint64) (*trace.Tracer, error) {
	return s.trace(seed, false)
}

// TraceWPP is Trace with whole-program-path recording enabled: the full
// block trace is accumulated as a SEQUITUR grammar on the tracer's WPP
// field.
func (s *Session) TraceWPP(seed uint64) (*trace.Tracer, error) {
	return s.trace(seed, true)
}

func (s *Session) trace(seed uint64, wpp bool) (*trace.Tracer, error) {
	tr, _, err := s.pipe.Trace(seed, wpp, s.Out)
	return tr, err
}

// LoopEstimate pairs a loop with its solved bounds.
type LoopEstimate struct {
	Func *profile.FuncInfo
	Loop *profile.LoopInfo
	Res  *estimate.LoopResult
}

// SiteEstimate pairs one (caller, site, callee) edge with its Type I and
// Type II bounds.
type SiteEstimate struct {
	Caller *profile.FuncInfo
	Site   *profile.CallSiteInfo
	Callee *profile.FuncInfo
	Calls  uint64
	TypeI  *estimate.InterResult
	TypeII *estimate.InterResult
}

// ProgramEstimate aggregates a whole-program estimation.
type ProgramEstimate struct {
	K     int
	Mode  estimate.Mode
	Loops []LoopEstimate
	Sites []SiteEstimate
	// Skipped counts problems over the size limit.
	Skipped int
}

// Definite sums lower bounds over all interesting paths.
func (pe *ProgramEstimate) Definite() int64 {
	var v int64
	for _, l := range pe.Loops {
		v += l.Res.Definite()
	}
	for _, st := range pe.Sites {
		if st.TypeI != nil {
			v += st.TypeI.Definite()
		}
		if st.TypeII != nil {
			v += st.TypeII.Definite()
		}
	}
	return v
}

// Potential sums upper bounds over all interesting paths.
func (pe *ProgramEstimate) Potential() int64 {
	var v int64
	for _, l := range pe.Loops {
		v += l.Res.Potential()
	}
	for _, st := range pe.Sites {
		if st.TypeI != nil {
			v += st.TypeI.Potential()
		}
		if st.TypeII != nil {
			v += st.TypeII.Potential()
		}
	}
	return v
}

// Counts returns (variables, exactly-pinned variables).
func (pe *ProgramEstimate) Counts() (vars, exact int) {
	for _, l := range pe.Loops {
		vars += l.Res.N
		exact += l.Res.Exact()
	}
	for _, st := range pe.Sites {
		for _, r := range []*estimate.InterResult{st.TypeI, st.TypeII} {
			if r != nil {
				vars += r.N
				exact += r.Exact()
			}
		}
	}
	return
}

// Summary renders a short human-readable overview.
func (pe *ProgramEstimate) Summary() string {
	vars, exact := pe.Counts()
	return fmt.Sprintf("k=%d mode=%v: definite=%d potential=%d, %d/%d paths pinned exactly, %d problems skipped",
		pe.K, pe.Mode, pe.Definite(), pe.Potential(), exact, vars, pe.Skipped)
}

// Estimate solves every interesting-path estimation problem from a run's
// counters at the run's own degree, in Paper mode. (Estimating "at a lower
// degree" needs no separate entry point: the constraint set already contains
// every coarser level, so a degree-k profile subsumes the lower-degree
// estimates.)
func (s *Session) Estimate(run *Run) (*ProgramEstimate, error) {
	return s.EstimateMode(run, estimate.Paper)
}

// EstimateMode is Estimate with an explicit constraint mode.
func (s *Session) EstimateMode(run *Run, mode estimate.Mode) (*ProgramEstimate, error) {
	k := run.K
	pe := &ProgramEstimate{K: k, Mode: mode}
	c := run.Counters
	for fidx, fi := range s.Info.Funcs {
		for _, li := range fi.Loops {
			// Structures outside the run's selection carry no
			// overlap counters; estimate them from BL data alone.
			lk := k
			if !run.Selection.LoopOn(fidx, li.Index) {
				lk = -1
			}
			res, err := estimate.Loop(fi, li, c.BL[fidx], c.Loop, lk, mode)
			if err != nil {
				return nil, err
			}
			pe.Loops = append(pe.Loops, LoopEstimate{Func: fi, Loop: li, Res: res})
		}
	}
	// Deterministic site order.
	keys := make([]profile.CallKey, 0, len(c.Calls))
	for ck := range c.Calls {
		keys = append(keys, ck)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Callee < b.Callee
	})
	for _, ck := range keys {
		caller := s.Info.Funcs[ck.Caller]
		cs := caller.CallSites[ck.Site]
		se := SiteEstimate{
			Caller: caller, Site: cs, Callee: s.Info.Funcs[ck.Callee],
			Calls: c.Calls[ck],
		}
		sk := k
		if !run.Selection.SiteOn(ck.Caller, ck.Site) {
			sk = -1
		}
		r1, err := estimate.TypeI(s.Info, caller, cs, ck.Callee, c.BL[ck.Caller], c.BL[ck.Callee], c.TypeI, c.Calls[ck], sk, mode)
		switch err {
		case nil:
			se.TypeI = r1
		case estimate.ErrTooLarge:
			pe.Skipped++
		default:
			return nil, err
		}
		r2, err := estimate.TypeII(s.Info, caller, cs, ck.Callee, c.BL[ck.Caller], c.BL[ck.Callee], c.TypeII, c.Calls[ck], sk, mode)
		switch err {
		case nil:
			se.TypeII = r2
		case estimate.ErrTooLarge:
			pe.Skipped++
		default:
			return nil, err
		}
		pe.Sites = append(pe.Sites, se)
	}
	return pe, nil
}

// HotPath is one entry of a profile report.
type HotPath struct {
	Func  string
	ID    int64
	Count uint64
	// Blocks is the rendered block sequence, "!"-terminated when the
	// path ends at a backedge.
	Blocks string
}

// HottestPaths returns the n most frequent BL paths across the program.
func (s *Session) HottestPaths(run *Run, n int) ([]HotPath, error) {
	var all []HotPath
	for fidx, prof := range run.Counters.BL {
		fi := s.Info.Funcs[fidx]
		for id, cnt := range prof {
			p, err := fi.DAG.PathForID(id)
			if err != nil {
				return nil, err
			}
			all = append(all, HotPath{
				Func: fi.Fn.Name, ID: id, Count: cnt,
				Blocks: p.Format(fi.G),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		if all[i].Func != all[j].Func {
			return all[i].Func < all[j].Func
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > n {
		all = all[:n]
	}
	return all, nil
}

// FormatHotPaths renders a hot-path report.
func FormatHotPaths(paths []HotPath) string {
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "%8d  %s#%d  %s\n", p.Count, p.Func, p.ID, p.Blocks)
	}
	return b.String()
}

// AdviseK picks the largest overlap degree whose total instrumentation
// overhead stays within budgetPct — the paper's "the amount of overlap can
// be selected to control the cost", automated with short calibration runs.
// The advised degree is -1 when only plain Ball-Larus profiling fits; ok is
// false when not even that does.
func (s *Session) AdviseK(seed uint64, budgetPct float64) (k int, ok bool, err error) {
	blRun, err := s.ProfileBL(seed)
	if err != nil {
		return -1, false, err
	}
	if blRun.Overhead.BLPct() > budgetPct {
		return -1, false, nil
	}
	best := -1
	for k := 0; k <= s.MaxDegree(); k++ {
		run, err := s.ProfileOL(seed, k)
		if err != nil {
			return best, true, err
		}
		if run.Overhead.BLPct()+run.Overhead.AllPct() > budgetPct {
			break
		}
		best = k
	}
	return best, true, nil
}
