package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"pathprof/internal/profile"
)

// SaveRun persists a run — its degree, window width, and counters — so
// estimation can happen offline or in another process. The degree travels
// with the data because counter route-encodings are only meaningful
// relative to the degree-k extension numbering they were collected under;
// the window width (iters) for the same reason, and it is omitted at the
// classic two-iteration setting so those runs keep their exact historical
// bytes.
func SaveRun(w io.Writer, run *Run) error {
	bw := bufio.NewWriter(w)
	hdr := struct {
		Format string `json:"format"`
		K      int    `json:"k"`
		Iters  int    `json:"iters,omitempty"`
	}{Format: "pathprof-run", K: run.K}
	if run.Iters > 2 {
		hdr.Iters = run.Iters
	}
	if err := json.NewEncoder(bw).Encode(hdr); err != nil {
		return err
	}
	if err := run.Counters.Serialize(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadRun reads a run written by SaveRun.
func LoadRun(r io.Reader) (*Run, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("core: reading run header: %w", err)
	}
	var hdr struct {
		Format string `json:"format"`
		K      int    `json:"k"`
		Iters  int    `json:"iters,omitempty"`
	}
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("core: parsing run header: %w", err)
	}
	if hdr.Format != "pathprof-run" {
		return nil, fmt.Errorf("core: unknown run format %q", hdr.Format)
	}
	c, err := profile.ReadCounters(br)
	if err != nil {
		return nil, err
	}
	return RunFromCounters(hdr.K, hdr.Iters, c), nil
}
