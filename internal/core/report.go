package core

import (
	"fmt"
	"sort"

	"pathprof/internal/bl"
)

// This file turns solved estimates into the reports the paper's motivating
// applications consume: hot two-iteration loop pairs (unrolling / partial
// redundancy elimination across backedges) and hot call-crossing pairs
// (interprocedural branch elimination, inlining and specialization hints).

// LoopPair is one interesting loop path (i ! j) with its bounds.
type LoopPair struct {
	Func string
	// Head is the loop header label.
	Head string
	I, J int
	// ISeq and JSeq render the two iteration sequences.
	ISeq, JSeq string
	// Lower and Upper bound the pair's frequency.
	Lower, Upper int64
	// Repeating marks i == j: the same iteration path twice in a row —
	// the prime unrolling/PRE candidate of the paper's introduction.
	Repeating bool
}

// HotLoopPairs extracts the loop pairs whose lower bound is at least
// minLower, sorted by lower bound descending.
func (s *Session) HotLoopPairs(pe *ProgramEstimate, minLower int64) []LoopPair {
	var out []LoopPair
	for _, le := range pe.Loops {
		n := le.Loop.LP.Count()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := le.Res.Var(i, j)
				lo := le.Res.Res.Lower[v]
				if lo < minLower || lo == 0 {
					continue
				}
				out = append(out, LoopPair{
					Func: le.Func.Fn.Name,
					Head: le.Func.G.Label(le.Loop.Loop.Head),
					I:    i, J: j,
					ISeq:      bl.FormatSeq(le.Func.G, le.Loop.LP.Seqs[i]),
					JSeq:      bl.FormatSeq(le.Func.G, le.Loop.LP.Seqs[j]),
					Lower:     lo,
					Upper:     le.Res.Res.Upper[v],
					Repeating: i == j,
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Lower != out[b].Lower {
			return out[a].Lower > out[b].Lower
		}
		if out[a].Func != out[b].Func {
			return out[a].Func < out[b].Func
		}
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// CrossingPair is one interprocedural interesting path with its bounds.
type CrossingPair struct {
	// Kind is "I" (caller prefix into callee) or "II" (callee into
	// caller suffix).
	Kind   string
	Caller string
	Site   string
	Callee string
	// First and Second render the two path components.
	First, Second string
	Lower, Upper  int64
}

// HotCrossingPairs extracts Type I and Type II pairs with lower bound at
// least minLower, sorted by lower bound descending.
func (s *Session) HotCrossingPairs(pe *ProgramEstimate, minLower int64) ([]CrossingPair, error) {
	var out []CrossingPair
	for _, se := range pe.Sites {
		if se.TypeI != nil {
			pairs, err := s.typeIPairs(se, minLower)
			if err != nil {
				return nil, err
			}
			out = append(out, pairs...)
		}
		if se.TypeII != nil {
			pairs, err := s.typeIIPairs(se, minLower)
			if err != nil {
				return nil, err
			}
			out = append(out, pairs...)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Lower != out[b].Lower {
			return out[a].Lower > out[b].Lower
		}
		if out[a].Kind != out[b].Kind {
			return out[a].Kind < out[b].Kind
		}
		return out[a].First+out[a].Second < out[b].First+out[b].Second
	})
	return out, nil
}

func (s *Session) typeIPairs(se SiteEstimate, minLower int64) ([]CrossingPair, error) {
	r := se.TypeI
	ps, err := se.Caller.Prefixes(se.Site)
	if err != nil {
		return nil, err
	}
	nq := len(r.QIDs)
	var out []CrossingPair
	for pi, pr := range ps.Items {
		for qi, qid := range r.QIDs {
			v := pi*nq + qi
			lo := r.Res.Lower[v]
			if lo < minLower || lo == 0 {
				continue
			}
			q, err := se.Callee.DAG.PathForID(qid)
			if err != nil {
				return nil, err
			}
			out = append(out, CrossingPair{
				Kind:   "I",
				Caller: se.Caller.Fn.Name,
				Site:   se.Caller.G.Label(se.Site.Block),
				Callee: se.Callee.Fn.Name,
				First:  bl.FormatSeq(se.Caller.G, pr.Blocks),
				Second: q.Format(se.Callee.G),
				Lower:  lo,
				Upper:  r.Res.Upper[v],
			})
		}
	}
	return out, nil
}

func (s *Session) typeIIPairs(se SiteEstimate, minLower int64) ([]CrossingPair, error) {
	r := se.TypeII
	ss, err := se.Caller.Suffixes(se.Site)
	if err != nil {
		return nil, err
	}
	ns := r.NSuffix
	var out []CrossingPair
	for qi, qid := range r.QIDs {
		for si := 0; si < ns; si++ {
			v := qi*ns + si
			lo := r.Res.Lower[v]
			if lo < minLower || lo == 0 {
				continue
			}
			q, err := se.Callee.DAG.PathForID(qid)
			if err != nil {
				return nil, err
			}
			out = append(out, CrossingPair{
				Kind:   "II",
				Caller: se.Caller.Fn.Name,
				Site:   se.Caller.G.Label(se.Site.Block),
				Callee: se.Callee.Fn.Name,
				First:  q.Format(se.Callee.G),
				Second: bl.FormatSeq(se.Caller.G, ss.Seqs[si]),
				Lower:  lo,
				Upper:  r.Res.Upper[v],
			})
		}
	}
	return out, nil
}

// FormatLoopPairs renders loop pairs, flagging repeating ones.
func FormatLoopPairs(pairs []LoopPair) string {
	var b []byte
	for _, p := range pairs {
		tag := "    "
		if p.Repeating {
			tag = "[RR]" // repeating path: unroll / cross-iteration PRE candidate
		}
		b = append(b, fmt.Sprintf("%8d..%-8d %s %s loop@%s: %s ! %s\n",
			p.Lower, p.Upper, tag, p.Func, p.Head, p.ISeq, p.JSeq)...)
	}
	return string(b)
}

// FormatCrossingPairs renders interprocedural pairs.
func FormatCrossingPairs(pairs []CrossingPair) string {
	var b []byte
	for _, p := range pairs {
		b = append(b, fmt.Sprintf("%8d..%-8d type-%-2s %s@%s -> %s: %s ! %s\n",
			p.Lower, p.Upper, p.Kind, p.Caller, p.Site, p.Callee, p.First, p.Second)...)
	}
	return string(b)
}
