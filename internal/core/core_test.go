package core

import (
	"bytes"
	"strings"
	"testing"

	"pathprof/internal/estimate"
)

const demoSrc = `
var total = 0;
func classify(x) {
	if (x < 10) { return 0; }
	if (x < 100) { return 1; }
	return 2;
}
func main() {
	for (var i = 0; i < 200; i = i + 1) {
		var c = classify(rand(150));
		if (c == 0) { total = total + 1; } else {
			if (c == 1) { total = total + 10; } else { total = total + 100; }
		}
	}
	print(total);
}
`

func openDemo(t *testing.T) *Session {
	t.Helper()
	s, err := Open(demoSrc)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestOpenRejectsBadSource(t *testing.T) {
	if _, err := Open("func main() { x = ; }"); err == nil {
		t.Fatal("Open accepted bad source")
	}
	if _, err := Open("func f() {}"); err == nil {
		t.Fatal("Open accepted program without main")
	}
}

func TestProfileAndEstimateRoundTrip(t *testing.T) {
	s := openDemo(t)
	if s.MaxDegree() < 1 {
		t.Fatalf("MaxDegree = %d", s.MaxDegree())
	}
	blRun, err := s.ProfileBL(7)
	if err != nil {
		t.Fatal(err)
	}
	if blRun.Steps == 0 || blRun.Overhead.BLOps == 0 {
		t.Fatal("BL run collected nothing")
	}
	if blRun.Overhead.LoopOps != 0 || blRun.Overhead.InterOps != 0 {
		t.Fatal("BL run charged overlap ops")
	}

	k := s.MaxDegree()
	olRun, err := s.ProfileOL(7, k)
	if err != nil {
		t.Fatal(err)
	}
	// BL counters are identical across configurations (same seed).
	for f := range blRun.Counters.BL {
		for id, n := range blRun.Counters.BL[f] {
			if olRun.Counters.BL[f][id] != n {
				t.Fatalf("BL profile differs between runs at func %d path %d", f, id)
			}
		}
	}

	tr, err := s.Trace(7)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := tr.Flows()
	if err != nil {
		t.Fatal(err)
	}

	peBL, err := s.Estimate(blRun)
	if err != nil {
		t.Fatal(err)
	}
	peOL, err := s.Estimate(olRun)
	if err != nil {
		t.Fatal(err)
	}
	real := int64(rf.Total())
	if peBL.Definite() > real || peBL.Potential() < real {
		t.Fatalf("BL estimate [%d,%d] misses real %d", peBL.Definite(), peBL.Potential(), real)
	}
	// At max degree the estimate is exact.
	if peOL.Definite() != real || peOL.Potential() != real {
		t.Fatalf("max-degree estimate [%d,%d] != real %d", peOL.Definite(), peOL.Potential(), real)
	}
	vars, exact := peOL.Counts()
	if vars == 0 || exact != vars {
		t.Fatalf("max-degree exactness: %d/%d", exact, vars)
	}
	if !strings.Contains(peOL.Summary(), "pinned exactly") {
		t.Fatalf("Summary: %q", peOL.Summary())
	}

}

func TestHottestPaths(t *testing.T) {
	s := openDemo(t)
	run, err := s.ProfileBL(7)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := s.HottestPaths(run, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 || len(hot) > 5 {
		t.Fatalf("hot paths = %d", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Count > hot[i-1].Count {
			t.Fatal("hot paths not sorted by count")
		}
	}
	text := FormatHotPaths(hot)
	if !strings.Contains(text, "=>") {
		t.Fatalf("hot path rendering lacks block sequences:\n%s", text)
	}
}

func TestHotPairReports(t *testing.T) {
	s := openDemo(t)
	k := s.MaxDegree()
	run, err := s.ProfileOL(7, k)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := s.Estimate(run)
	if err != nil {
		t.Fatal(err)
	}
	loops := s.HotLoopPairs(pe, 1)
	if len(loops) == 0 {
		t.Fatal("no hot loop pairs found")
	}
	for i := 1; i < len(loops); i++ {
		if loops[i].Lower > loops[i-1].Lower {
			t.Fatal("loop pairs not sorted")
		}
	}
	if text := FormatLoopPairs(loops); !strings.Contains(text, "loop@") {
		t.Fatalf("loop pair rendering:\n%s", text)
	}

	cross, err := s.HotCrossingPairs(pe, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cross) == 0 {
		t.Fatal("no hot crossing pairs found")
	}
	sawI, sawII := false, false
	for _, c := range cross {
		switch c.Kind {
		case "I":
			sawI = true
		case "II":
			sawII = true
		}
	}
	if !sawI || !sawII {
		t.Fatalf("missing crossing kinds: I=%v II=%v", sawI, sawII)
	}
	if text := FormatCrossingPairs(cross); !strings.Contains(text, "type-I") {
		t.Fatalf("crossing rendering:\n%s", text)
	}
}

func TestSessionOutCapturesProgramOutput(t *testing.T) {
	s := openDemo(t)
	var buf bytes.Buffer
	s.Out = &buf
	if _, err := s.ProfileBL(7); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("program print output not captured")
	}
}

func TestEstimateModeExtendedSound(t *testing.T) {
	s := openDemo(t)
	run, err := s.ProfileOL(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Trace(7)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := tr.Flows()
	if err != nil {
		t.Fatal(err)
	}
	pe, err := s.EstimateMode(run, estimate.Extended)
	if err != nil {
		t.Fatal(err)
	}
	real := int64(rf.Total())
	if pe.Definite() > real || pe.Potential() < real {
		t.Fatalf("extended estimate [%d,%d] misses real %d", pe.Definite(), pe.Potential(), real)
	}
}

func TestAdviseK(t *testing.T) {
	s := openDemo(t)
	// A generous budget admits the maximum degree.
	k, ok, err := s.AdviseK(7, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || k != s.MaxDegree() {
		t.Fatalf("AdviseK(huge budget) = %d,%v; want max %d", k, ok, s.MaxDegree())
	}
	// A tiny budget admits nothing, not even BL.
	k, ok, err = s.AdviseK(7, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if ok || k != -1 {
		t.Fatalf("AdviseK(tiny budget) = %d,%v; want -1,false", k, ok)
	}
	// Any budget between BL's cost and the max-degree cost must admit BL
	// and respect the budget: the advised configuration's measured
	// overhead fits, and the next degree (if any) does not.
	blRun, err := s.ProfileBL(7)
	if err != nil {
		t.Fatal(err)
	}
	maxRun, err := s.ProfileOL(7, s.MaxDegree())
	if err != nil {
		t.Fatal(err)
	}
	mid := (blRun.Overhead.BLPct() + maxRun.Overhead.BLPct() + maxRun.Overhead.AllPct()) / 2
	k, ok, err = s.AdviseK(7, mid)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("mid budget %.1f should admit BL", mid)
	}
	if k >= 0 {
		run, err := s.ProfileOL(7, k)
		if err != nil {
			t.Fatal(err)
		}
		if run.Overhead.BLPct()+run.Overhead.AllPct() > mid {
			t.Fatalf("advised k=%d exceeds budget %.1f", k, mid)
		}
	}
	if k < s.MaxDegree() {
		next, err := s.ProfileOL(7, k+1)
		if err != nil {
			t.Fatal(err)
		}
		if next.Overhead.BLPct()+next.Overhead.AllPct() <= mid {
			t.Fatalf("degree %d also fits budget %.1f; advisor under-advised", k+1, mid)
		}
	}
}

func TestSaveLoadRun(t *testing.T) {
	s := openDemo(t)
	run, err := s.ProfileOL(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K != 2 {
		t.Fatalf("loaded K = %d; want 2", loaded.K)
	}
	// Estimation from the loaded run matches the live run exactly.
	pe1, err := s.Estimate(run)
	if err != nil {
		t.Fatal(err)
	}
	pe2, err := s.Estimate(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if pe1.Definite() != pe2.Definite() || pe1.Potential() != pe2.Potential() {
		t.Fatalf("offline estimate [%d,%d] != live [%d,%d]",
			pe2.Definite(), pe2.Potential(), pe1.Definite(), pe1.Potential())
	}
	// Garbage rejected.
	if _, err := LoadRun(bytes.NewReader([]byte("junk\n"))); err == nil {
		t.Fatal("LoadRun accepted garbage")
	}
}
