package core

import (
	"testing"
)

// A program with one hot loop/call site and one cold loop/call site: the
// selective profiler must pick the hot ones, cost less than full
// instrumentation, and stay sound.
const selectiveSrc = `
var sink = 0;

func hotHelper(x) {
	if (x % 2 == 0) { return x + 1; }
	return x - 1;
}
func coldHelper(x) {
	if (x > 50) { return 1; }
	return 0;
}

func main() {
	// hot loop: 2000 iterations, calls hotHelper
	for (var i = 0; i < 2000; i = i + 1) {
		if (rand(4) == 0) { sink = sink + hotHelper(i); } else { sink = sink + 1; }
	}
	// cold loop: 5 iterations, calls coldHelper
	for (var j = 0; j < 5; j = j + 1) {
		sink = sink + coldHelper(rand(100));
	}
	print(sink);
}
`

func TestSelectiveProfiling(t *testing.T) {
	s, err := Open(selectiveSrc)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 11
	blRun, err := s.ProfileBL(seed)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := s.SelectHot(blRun, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	loops, sites := sel.Counts()
	if loops != 1 || sites != 1 {
		t.Fatalf("selection = %d loops, %d sites; want the hot one of each", loops, sites)
	}

	k := s.MaxDegree()
	full, err := s.ProfileOL(seed, k)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := s.ProfileSelective(seed, k, sel)
	if err != nil {
		t.Fatal(err)
	}

	// Selective instrumentation must cost less than full, and the cold
	// structures must produce no overlap counters.
	fullOps := full.Overhead.LoopOps + full.Overhead.InterOps
	partOps := partial.Overhead.LoopOps + partial.Overhead.InterOps
	if partOps >= fullOps {
		t.Fatalf("selective ops %d not below full %d", partOps, fullOps)
	}
	if len(partial.Counters.Loop) >= len(full.Counters.Loop) &&
		len(full.Counters.Loop) > 0 {
		// The cold loop runs only 5 iterations; its counters are few,
		// so just require no *more* counters than full.
		t.Fatalf("selective produced %d loop counters, full %d",
			len(partial.Counters.Loop), len(full.Counters.Loop))
	}

	// Estimation stays sound and the hot structures stay precise.
	tr, err := s.Trace(seed)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := tr.Flows()
	if err != nil {
		t.Fatal(err)
	}
	real := int64(rf.Total())
	pe, err := s.Estimate(partial)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Definite() > real || pe.Potential() < real {
		t.Fatalf("selective estimate [%d,%d] misses real %d", pe.Definite(), pe.Potential(), real)
	}
	peFull, err := s.Estimate(full)
	if err != nil {
		t.Fatal(err)
	}
	peBL, err := s.Estimate(blRun)
	if err != nil {
		t.Fatal(err)
	}
	// Selective precision sits between BL-only and full instrumentation.
	if pe.Definite() < peBL.Definite() || pe.Potential() > peBL.Potential() {
		t.Fatalf("selective looser than BL-only: [%d,%d] vs [%d,%d]",
			pe.Definite(), pe.Potential(), peBL.Definite(), peBL.Potential())
	}
	if pe.Definite() > peFull.Definite() || pe.Potential() < peFull.Potential() {
		t.Fatalf("selective tighter than full instrumentation: [%d,%d] vs [%d,%d]",
			pe.Definite(), pe.Potential(), peFull.Definite(), peFull.Potential())
	}
	// And because the selection covers the hot flow, it should recover
	// most of the full precision gap over BL.
	gapFull := peFull.Definite() - peBL.Definite()
	gapSel := pe.Definite() - peBL.Definite()
	if gapFull > 0 && float64(gapSel) < 0.7*float64(gapFull) {
		t.Fatalf("selective recovered only %d of %d definite-flow gap", gapSel, gapFull)
	}
}

func TestSelectHotCoverageExtremes(t *testing.T) {
	s, err := Open(selectiveSrc)
	if err != nil {
		t.Fatal(err)
	}
	blRun, err := s.ProfileBL(11)
	if err != nil {
		t.Fatal(err)
	}
	all, err := s.SelectHot(blRun, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	none, err := s.SelectHot(blRun, 0)
	if err != nil {
		t.Fatal(err)
	}
	aLoops, aSites := all.Counts()
	nLoops, nSites := none.Counts()
	if aLoops < 2 || aSites < 2 {
		t.Fatalf("full coverage selected %d loops / %d sites; want all executed ones", aLoops, aSites)
	}
	if nLoops != 0 || nSites != 0 {
		t.Fatalf("zero coverage selected %d/%d; want none", nLoops, nSites)
	}
	// Clamping out-of-range coverages.
	if _, err := s.SelectHot(blRun, 7.5); err != nil {
		t.Fatal(err)
	}
}
